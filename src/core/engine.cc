#include "core/engine.hh"

#include <algorithm>
#include <cstdio>

#include "sip/timers.hh"

namespace siprox::core {

namespace {

/** Extract the URI from a name-addr header value like "<sip:x>;tag=y". */
std::optional<sip::SipUri>
uriFromNameAddr(std::string_view value)
{
    auto lt = value.find('<');
    if (lt != std::string_view::npos) {
        auto gt = value.find('>', lt);
        if (gt == std::string_view::npos)
            return std::nullopt;
        return sip::SipUri::parse(value.substr(lt + 1, gt - lt - 1));
    }
    auto semi = value.find(';');
    return sip::SipUri::parse(value.substr(0, semi));
}

/** The address a Via header says to reply to. */
std::optional<net::Addr>
addrFromVia(const sip::Via &via)
{
    return sip::addrFromHost(via.host, via.effectivePort());
}

} // namespace

const char *
transportName(Transport t)
{
    switch (t) {
      case Transport::Udp:
        return "UDP";
      case Transport::Tcp:
        return "TCP";
      case Transport::Sctp:
        return "SCTP";
      case Transport::Tls:
        return "TLS";
      case Transport::Sst:
        return "SST";
    }
    return "?";
}

Engine::Engine(SharedState &shared, const ProxyConfig &cfg,
               net::Addr proxy_addr, int worker_id)
    : shared_(shared), cfg_(cfg), proxyAddr_(proxy_addr),
      viaHost_("h" + std::to_string(proxy_addr.host)),
      branches_(cfg.branchSaltBase + static_cast<std::uint64_t>(worker_id)),
      ccParse_(sim::CostCenters::id("ser:parse_msg")),
      ccRoute_(sim::CostCenters::id("ser:route")),
      ccBuild_(sim::CostCenters::id("ser:build_fwd")),
      ccTm_(sim::CostCenters::id("ser:tm")),
      ccUsrloc_(sim::CostCenters::id("ser:usrloc")),
      ccTimer_(sim::CostCenters::id("ser:timer")),
      ccConnHash_(sim::CostCenters::id("ser:tcpconn_hash"))
{
}

const char *
Engine::viaTransport() const
{
    return transportName(cfg_.transport);
}

sim::SimTime
Engine::scaled(sim::SimTime base) const
{
    double entries = static_cast<double>(shared_.conns.size())
        + static_cast<double>(shared_.registrar.size())
        + static_cast<double>(shared_.retrans.size());
    return static_cast<sim::SimTime>(
        static_cast<double>(base)
        * (1.0 + entries / cfg_.costs.statePressureScale));
}

sim::Task
Engine::handleMessage(sim::Process &p, std::string raw, MsgSource src,
                      std::vector<SendAction> &out)
{
    ++shared_.counters.messagesIn;
    // Panic shedding happens before the parse charge: past the panic
    // watermark even 503 generation is unaffordable, so datagrams are
    // dropped unread. Stream transports never drop (reads pause
    // instead, so kernel flow control pushes back).
    if (!isStreamTransport(cfg_.transport)
        && shared_.overload.panicDrop(p.sim().now()))
        co_return;
    // On/off hop restriction, panic variant: with the next hop stopped
    // and our own queue past the panic watermark, new INVITEs are
    // dropped before the parse charge — the cheapest possible shed.
    // Datagram only, and only when the restriction is positively known
    // (fresh feedback); a first-line peek costs nothing extra.
    if (!isStreamTransport(cfg_.transport) && cfg_.nextHop.valid()
        && shared_.hopGate.enabled()
        && shared_.overload.queuePanicked()
        && shared_.hopGate.restricted(cfg_.nextHop, p.sim().now())
        && raw.starts_with("INVITE ")) {
        ++shared_.counters.hopThrottleDrops;
        co_return;
    }
    co_await p.cpu(scaled(cfg_.costs.parse), ccParse_);
    // Zero-copy: the datagram/frame buffer becomes the message arena.
    auto parsed = sip::parseOwned(std::move(raw));
    if (!parsed.ok) {
        ++shared_.counters.parseErrors;
        co_return;
    }
    sip::SipMessage &msg = parsed.message;

    // The Call-ID is the causal trace id: set at the phone, carried
    // end to end, and recovered here so every proxy-side span joins
    // the call it serves.
    if (sim::trace::SpanCtx *span = p.span()) {
        std::string_view cid = msg.callId();
        span->traceId = sim::trace::traceIdFor(cid);
        span->callId.assign(cid);
        if (msg.isRequest()) {
            span->label = sip::methodName(msg.method());
        } else {
            span->label =
                "rsp " + std::to_string(msg.statusCode());
        }
    }

    if (msg.isRequest()) {
        ++shared_.counters.requestsIn;
        if (cfg_.authenticate && msg.method() != sip::Method::Ack) {
            bool accepted = false;
            co_await checkAuth(p, msg, src, &out, &accepted);
            if (!accepted)
                co_return;
        }
        // Aliases are refreshed by REGISTER handling only; per-request
        // refreshes would take the shared hash lock on every message
        // (phones re-REGISTER when they re-establish connections).
        if (msg.method() == sip::Method::Register)
            co_await handleRegister(p, std::move(msg), src, &out);
        else
            co_await handleRequest(p, std::move(msg), src, &out);
    } else {
        ++shared_.counters.responsesIn;
        co_await handleResponse(p, std::move(msg), src, &out);
    }
}

sim::Task
Engine::refreshAlias(sim::Process &p, const sip::SipMessage &msg,
                     MsgSource src)
{
    if (src.connId == 0)
        co_return;
    const auto &via = msg.topVia();
    if (!via)
        co_return;
    auto addr = addrFromVia(*via);
    if (!addr)
        co_return;
    co_await shared_.conns.lock().acquire(p);
    co_await p.cpu(cfg_.costs.connLookup, ccConnHash_);
    shared_.conns.setAlias(*addr, src.connId);
    shared_.conns.lock().release();
}

sim::Task
Engine::checkAuth(sim::Process &p, const sip::SipMessage &msg,
                  MsgSource src, std::vector<SendAction> *out,
                  bool *accepted)
{
    static const auto cc_auth = sim::CostCenters::id("ser:auth");
    auto auth = msg.header("Authorization");
    if (!auth || auth->find("response=") == std::string_view::npos) {
        // Challenge with a fresh nonce (RFC 2617 digest).
        ++shared_.counters.authChallenges;
        co_await p.cpu(cfg_.costs.authChallenge, cc_auth);
        sip::SipMessage rsp =
            sip::buildResponse(msg, sip::status::kUnauthorized);
        char challenge[64];
        int clen = std::snprintf(challenge, sizeof(challenge),
                                 "Digest realm=\"siprox\", nonce=\"n%llu\"",
                                 static_cast<unsigned long long>(++nonce_));
        rsp.addHeader("WWW-Authenticate",
                      std::string_view(challenge,
                                       static_cast<std::size_t>(clen)));
        attachHopFeedback(rsp, p.sim().now());
        co_await p.cpu(scaled(cfg_.costs.serialize), ccBuild_);
        SendAction action;
        action.wire = rsp.serialize();
        action.dstAddr = src.addr;
        action.dstConnId = src.connId;
        action.toUpstream = true;
        out->push_back(std::move(action));
        ++shared_.counters.localReplies;
        *accepted = false;
        co_return;
    }
    // Verify: credential fetch (the expensive part, per Nahum et al.)
    // plus the digest computation.
    co_await p.cpu(cfg_.costs.authDbLookup + cfg_.costs.authCheck,
                   cc_auth);
    ++shared_.counters.authAccepted;
    *accepted = true;
}

void
Engine::attachHopFeedback(sip::SipMessage &rsp, sim::SimTime now)
{
    if (!cfg_.overload.hop.enabled())
        return;
    HopFeedback fb = shared_.overload.advertiseFeedback(now);
    // Hop-by-hop cascade: a relay must not advertise more than it can
    // itself forward. Clamping the local grant by the one this hop
    // holds toward its own next hop propagates a downstream
    // bottleneck's restriction upstream one response at a time, until
    // the edge sheds excess load before the chain has spent any
    // parse/forward cost on it — without this, a healthy middle hop
    // advertises its own idle capacity and the edge never throttles.
    if (cfg_.nextHop.valid() && shared_.hopGate.enabled()) {
        switch (fb.scheme) {
        case FeedbackScheme::Rate:
            fb.rate = std::min(
                fb.rate, shared_.hopGate.grantedRate(cfg_.nextHop));
            break;
        case FeedbackScheme::Window:
            fb.window = std::min(
                fb.window,
                shared_.hopGate.grantedWindow(cfg_.nextHop));
            break;
        case FeedbackScheme::OnOff:
            if (shared_.hopGate.restricted(cfg_.nextHop, now))
                fb.on = false;
            break;
        case FeedbackScheme::None:
            break;
        }
    }
    char buf[48];
    std::size_t n = renderHopFeedback(fb, buf, sizeof(buf));
    if (n == 0)
        return;
    // addHeader interns the value into the message arena, so the stack
    // buffer never escapes and the hot path stays allocation-free.
    rsp.addHeader("Overload", std::string_view(buf, n));
    ++shared_.counters.hopFeedbackSent;
}

sim::Task
Engine::throttledWait(sim::Process &p, sim::SimTime d)
{
    sim::SimTime deadline = p.sim().now() + d;
    while (p.sim().now() < deadline) {
        auto ev = p.sim().at(deadline, [&p] { p.wake(); });
        co_await p.block("hop-throttled", sim::trace::Wait::Throttled);
        ev.cancel();
    }
}

sim::Task
Engine::replyTo(sim::Process &p, const sip::SipMessage &req, int status,
                MsgSource src, std::vector<SendAction> *out)
{
    sip::SipMessage rsp = sip::buildResponse(req, status);
    attachHopFeedback(rsp, p.sim().now());
    co_await p.cpu(scaled(cfg_.costs.serialize), ccBuild_);
    SendAction action;
    action.wire = rsp.serialize();
    action.dstAddr = src.addr;
    action.dstConnId = src.connId;
    action.toUpstream = true;
    out->push_back(std::move(action));
    ++shared_.counters.localReplies;
}

sim::Task
Engine::resolveConn(sim::Process &p, net::Addr dst,
                    std::uint64_t *conn_id)
{
    *conn_id = 0;
    if (!tcp())
        co_return;
    co_await shared_.conns.lock().acquire(p);
    co_await p.cpu(cfg_.costs.connLookup, ccConnHash_);
    if (TcpConnObj *obj = shared_.conns.byAddr(dst))
        *conn_id = obj->id;
    shared_.conns.lock().release();
}

sim::Task
Engine::handleRegister(sim::Process &p, sip::SipMessage msg,
                       MsgSource src, std::vector<SendAction> *out)
{
    auto contact = msg.contactUri();
    auto to_uri = uriFromNameAddr(msg.to());
    if (!contact || !to_uri) {
        co_await replyTo(p, msg, sip::status::kBadRequest, src, out);
        co_return;
    }
    co_await shared_.registrar.lock().acquire(p);
    co_await p.cpu(cfg_.costs.registrarUpdate, ccUsrloc_);
    shared_.registrar.update(to_uri->user,
                             Binding{*contact, src.connId});
    shared_.registrar.lock().release();

    if (shared_.location.enabled()) {
        if (shared_.location.owns(to_uri->user)) {
            // Owner shard: replicate the binding to the peers after
            // the configured lag (the replicator process drains the
            // queue and pushes over the replication sockets).
            co_await shared_.location.lock().acquire(p);
            shared_.location.queuePush(to_uri->user,
                                       contact->toString(),
                                       p.sim().now());
            shared_.location.lock().release();
            ++shared_.counters.locReplPushes;
        } else {
            // The dispatcher pins REGISTERs to the owner, so this is
            // the defensive path (direct registration at the wrong
            // instance): the binding is stored locally and counted,
            // but never replicated — it is not ours to own.
            ++shared_.counters.locRegisterForwards;
        }
    }

    if (tcp()) {
        // The contact address must route over this connection.
        if (auto addr = sip::addrFromUri(*contact)) {
            co_await shared_.conns.lock().acquire(p);
            co_await p.cpu(cfg_.costs.connLookup, ccConnHash_);
            shared_.conns.setAlias(*addr, src.connId);
            shared_.conns.lock().release();
        }
    }
    ++shared_.counters.registrations;
    co_await replyTo(p, msg, sip::status::kOk, src, out);
}

sim::Task
Engine::handleRequest(sim::Process &p, sip::SipMessage msg,
                      MsgSource src, std::vector<SendAction> *out)
{
    const bool stateful = cfg_.stateful;
    const bool is_invite = msg.method() == sip::Method::Invite;
    const bool is_ack = msg.method() == sip::Method::Ack;

    auto key = sip::transactionKey(msg);
    if (stateful && key) {
        co_await shared_.txns.lock().acquire(p);
        co_await p.cpu(scaled(cfg_.costs.txnLookup), ccTm_);
        auto rec = shared_.txns.find(*key);
        if (rec) {
            if (is_ack) {
                // ACK for a locally known INVITE transaction
                // (non-2xx): absorbed, not forwarded.
                rec->state = TxnRecord::State::Terminated;
                shared_.txns.lock().release();
                co_return;
            }
            // Retransmitted request: replay the last response.
            ++shared_.counters.retransAbsorbed;
            std::string replay = rec->lastResponse;
            net::Addr up_addr = rec->upstreamAddr;
            std::uint64_t up_conn = rec->upstreamConnId;
            shared_.txns.lock().release();
            if (!replay.empty()) {
                SendAction action;
                action.wire = std::move(replay);
                action.dstAddr = up_addr;
                action.dstConnId = up_conn;
                action.toUpstream = true;
                out->push_back(std::move(action));
            }
            co_return;
        }
        shared_.txns.lock().release();
    }

    // Hop-by-hop gate: new INVITEs toward the next hop must fit the
    // grant the downstream advertised, checked before any routing or
    // forwarding cost is spent. In-dialog work (ACK, BYE) and
    // responses always pass — finishing admitted calls is the point.
    bool hop_gated = false;
    if (is_invite && cfg_.nextHop.valid() && shared_.hopGate.enabled()) {
        auto gate = shared_.hopGate.tryAdmit(cfg_.nextHop, p.sim().now());
        if (gate == HopThrottleTable::Gate::Busy
            && cfg_.overload.hop.holdMax > 0) {
            // Park for a grant instead of rejecting outright (never
            // under the event-driven arch: holdMax is forced to 0).
            ++shared_.counters.hopThrottleHolds;
            const sim::SimTime give_up =
                p.sim().now() + cfg_.overload.hop.holdMax;
            while (gate == HopThrottleTable::Gate::Busy
                   && p.sim().now() < give_up) {
                co_await throttledWait(
                    p, std::min(cfg_.overload.hop.holdTick,
                                give_up - p.sim().now()));
                gate = shared_.hopGate.tryAdmit(cfg_.nextHop,
                                                p.sim().now());
            }
        }
        if (gate == HopThrottleTable::Gate::Busy) {
            ++shared_.counters.hopThrottleRejects;
            sip::SipMessage rsp = sip::buildResponse(
                msg, sip::status::kServiceUnavailable);
            rsp.addHeader(
                "Retry-After",
                std::to_string(cfg_.overload.hop.retryAfterSecs));
            attachHopFeedback(rsp, p.sim().now());
            co_await p.cpu(scaled(cfg_.costs.serialize), ccBuild_);
            SendAction action;
            action.wire = rsp.serialize();
            action.dstAddr = src.addr;
            action.dstConnId = src.connId;
            action.toUpstream = true;
            out->push_back(std::move(action));
            ++shared_.counters.localReplies;
            co_return;
        }
        // Window admits reserve a pending slot; remember to release it
        // exactly once (final response, Timer B, or abort below).
        hop_gated =
            cfg_.overload.hop.scheme == FeedbackScheme::Window;
    }

    // Admission control: only genuinely new INVITEs are sheddable.
    // Retransmits were absorbed above, and in-dialog work (ACK, BYE)
    // is always admitted — finishing admitted calls is what preserves
    // goodput under overload.
    if (is_invite && shared_.overload.enabled()) {
        auto adm = shared_.overload.admitRequest(p.sim().now());
        if (adm != OverloadController::Admission::Admit) {
            if (hop_gated)
                shared_.hopGate.noteAborted(cfg_.nextHop);
            if (adm == OverloadController::Admission::Reject) {
                sip::SipMessage rsp = sip::buildResponse(
                    msg, sip::status::kServiceUnavailable);
                rsp.addHeader(
                    "Retry-After",
                    std::to_string(cfg_.overload.retryAfterSecs));
                attachHopFeedback(rsp, p.sim().now());
                co_await p.cpu(scaled(cfg_.costs.serialize), ccBuild_);
                SendAction action;
                action.wire = rsp.serialize();
                action.dstAddr = src.addr;
                action.dstConnId = src.connId;
                action.toUpstream = true;
                out->push_back(std::move(action));
                ++shared_.counters.localReplies;
            }
            co_return;
        }
    }

    // A stateful proxy takes responsibility with 100 Trying (§2 step 2).
    std::string trying_wire;
    if (stateful && is_invite) {
        co_await replyTo(p, msg, sip::status::kTrying, src, out);
        trying_wire = out->back().wire;
    }

    // --- routing ---------------------------------------------------------
    co_await p.cpu(scaled(cfg_.costs.route), ccRoute_);
    sip::SipUri target;
    std::optional<net::Addr> dst;
    if (cfg_.nextHop.valid()) {
        // Chained: every non-REGISTER request goes to the next hop
        // with its request-URI untouched; only the chain destination
        // consults a registrar (phones register at their home proxy).
        target = msg.requestUri();
        dst = cfg_.nextHop;
    } else {
        const std::string user = msg.requestUri().user;

        // Cluster path: when another instance's shard owns the callee,
        // either serve from the async-replicated local copy (stale
        // reads) or forward the request itself to the owner over a
        // real inter-proxy socket — the second hop pays full
        // parse/route/serialize there.
        bool routed = false;
        LocationService &loc = shared_.location;
        if (loc.enabled() && !loc.owns(user)) {
            if (loc.config().staleReads) {
                co_await loc.lock().acquire(p);
                co_await p.cpu(scaled(cfg_.costs.replicaLookup),
                               ccUsrloc_);
                auto replica = loc.replicaLookup(user);
                loc.lock().release();
                if (replica) {
                    target = replica->contact;
                    dst = sip::addrFromUri(target);
                    if (dst) {
                        ++shared_.counters.locReplicaHits;
                        routed = true;
                    }
                }
            }
            if (!routed) {
                ++shared_.counters.locMissForwards;
                target = msg.requestUri(); // the owner re-routes it
                dst = loc.peerAddr(loc.owner(user));
                routed = dst->valid();
            }
        }

        if (!routed) {
            co_await shared_.registrar.lock().acquire(p);
            co_await p.cpu(scaled(cfg_.costs.registrarLookup),
                           ccUsrloc_);
            auto binding = shared_.registrar.lookup(user);
            shared_.registrar.lock().release();

            if (binding) {
                if (loc.enabled())
                    ++shared_.counters.locLocalHits;
                target = binding->contact;
            } else if (auto direct = sip::addrFromUri(msg.requestUri());
                       direct && *direct != proxyAddr_) {
                target = msg.requestUri();
            } else {
                ++shared_.counters.routeFailures;
                if (!is_ack)
                    co_await replyTo(p, msg, sip::status::kNotFound,
                                     src, out);
                co_return;
            }
            dst = sip::addrFromUri(target);
            if (!dst) {
                ++shared_.counters.routeFailures;
                if (!is_ack)
                    co_await replyTo(p, msg, sip::status::kNotFound,
                                     src, out);
                co_return;
            }
        }
    }

    // Redirect-server mode (paper Â§2): remove ourselves from the
    // transaction by handing the caller the registered contact.
    if (cfg_.redirect && is_invite) {
        ++shared_.counters.redirects;
        sip::SipMessage rsp = sip::buildResponse(
            msg, sip::status::kMovedTemporarily, "", target);
        attachHopFeedback(rsp, p.sim().now());
        co_await p.cpu(scaled(cfg_.costs.serialize), ccBuild_);
        SendAction action;
        action.wire = rsp.serialize();
        action.dstAddr = src.addr;
        action.dstConnId = src.connId;
        action.toUpstream = true;
        out->push_back(std::move(action));
        ++shared_.counters.localReplies;
        co_return;
    }

    // --- build the forwarded request ---------------------------------------
    int mf = msg.maxForwards().value_or(70);
    if (mf <= 0) {
        ++shared_.counters.routeFailures;
        if (hop_gated)
            shared_.hopGate.noteAborted(cfg_.nextHop);
        co_return; // loop guard: drop
    }
    sip::SipMessage fwd = msg;
    fwd.setMaxForwards(mf - 1);
    fwd.setRequestUri(target);
    std::string branch = branches_.next();
    sip::Via via;
    via.transport = viaTransport();
    via.host = viaHost_;
    via.port = proxyAddr_.port;
    via.branch = branch;
    fwd.prependVia(via);
    co_await p.cpu(scaled(cfg_.costs.serialize), ccBuild_);
    std::string wire = fwd.serialize();

    // --- transaction state -------------------------------------------------
    sip::TransactionKey client_key{branch, is_ack ? sip::Method::Ack
                                                  : msg.method()};
    if (stateful && key && !is_ack) {
        TxnRecord record;
        record.serverKey = *key;
        record.clientKey = client_key;
        record.method = msg.method();
        record.upstreamAddr = src.addr;
        record.upstreamConnId = src.connId;
        record.createdAt = p.sim().now();
        record.hopGated = hop_gated;
        hop_gated = false; // the record now owns the window slot
        // The TRYING absorbs caller-side INVITE retransmissions until
        // a downstream response replaces it.
        record.lastResponse = trying_wire;
        co_await shared_.txns.lock().acquire(p);
        co_await p.cpu(scaled(cfg_.costs.txnCreate), ccTm_);
        shared_.txns.insert(std::move(record));
        shared_.txns.lock().release();

        if (unreliable()) {
            // The proxy now owns retransmission (§2): arm a timer on
            // the global list for the forwarded request.
            RetransList::Entry entry;
            entry.key = client_key;
            entry.wire = wire;
            entry.dst = *dst;
            entry.interval = sip::timers::kT1;
            entry.nextAt = p.sim().now() + sip::timers::kT1;
            entry.deadline = p.sim().now() + sip::timers::kTimerB;
            entry.invite = is_invite;
            co_await shared_.retrans.lock().acquire(p);
            co_await p.cpu(cfg_.costs.timerArm, ccTimer_);
            shared_.retrans.arm(std::move(entry));
            shared_.retrans.lock().release();
        }
    }

    SendAction action;
    action.wire = std::move(wire);
    action.dstAddr = *dst;
    co_await resolveConn(p, *dst, &action.dstConnId);
    out->push_back(std::move(action));
    ++shared_.counters.forwards;
    // Window slots need a transaction record to be released against;
    // without one (stateless, or a keyless request) release now so a
    // misconfiguration degrades to rate-less accounting, not deadlock.
    if (hop_gated)
        shared_.hopGate.noteAborted(cfg_.nextHop);
}

sim::Task
Engine::handleTimeout(sim::Process &p, const RetransList::TimedOut &to,
                      std::vector<SendAction> *out)
{
    ++shared_.counters.retransTimeouts;
    // Rebuild the timed-out branch from the stored forwarded request
    // and answer for the silent downstream (§16.8: acting as a UAS).
    co_await p.cpu(scaled(cfg_.costs.parse), ccParse_);
    auto parsed = sip::parseMessage(to.wire);
    if (!parsed.ok)
        co_return;
    if (sim::trace::SpanCtx *span = p.span()) {
        std::string_view cid = parsed.message.callId();
        span->traceId = sim::trace::traceIdFor(cid);
        span->callId.assign(cid);
        span->label = "timeout 408";
    }
    sip::SipMessage rsp =
        sip::buildResponse(parsed.message, sip::status::kRequestTimeout);
    // The top Via is the proxy's own branch; pop it as if the 408 had
    // arrived from downstream (§16.7).
    rsp.removeFirstHeader(sip::HeaderId::Via);
    attachHopFeedback(rsp, p.sim().now());
    co_await p.cpu(scaled(cfg_.costs.serialize), ccBuild_);
    std::string wire = rsp.serialize();

    co_await shared_.txns.lock().acquire(p);
    co_await p.cpu(scaled(cfg_.costs.txnLookup), ccTm_);
    auto rec = shared_.txns.find(to.key);
    if (!rec || rec->state != TxnRecord::State::Proceeding) {
        // Already answered (or stateless): nothing to time out.
        shared_.txns.lock().release();
        co_return;
    }
    co_await p.cpu(scaled(cfg_.costs.txnUpdate), ccTm_);
    rec->state = TxnRecord::State::Completed;
    rec->lastResponse = wire;
    shared_.txns.scheduleExpiry(rec, p.sim().now() + cfg_.txnLinger);
    net::Addr dst = rec->upstreamAddr;
    std::uint64_t dst_conn = rec->upstreamConnId;
    sim::SimTime created = rec->createdAt;
    bool hop_gated = rec->hopGated;
    rec->hopGated = false;
    shared_.txns.lock().release();
    if (hop_gated)
        shared_.hopGate.noteCompleted(cfg_.nextHop);

    // A Timer B expiry is the strongest overload signal there is: the
    // transaction took the full deadline.
    shared_.overload.recordServed(p.sim().now(),
                                  p.sim().now() - created);

    ++shared_.counters.timerB408s;
    ++shared_.counters.localReplies;
    SendAction action;
    action.wire = std::move(wire);
    action.dstAddr = dst;
    action.dstConnId = dst_conn;
    action.toUpstream = true;
    out->push_back(std::move(action));
}

sim::Task
Engine::handleResponse(sim::Process &p, sip::SipMessage msg,
                       MsgSource src, std::vector<SendAction> *out)
{
    // Feedback rides the response stream: consume the next hop's
    // advertisement and strip it — each hop advertises its *own*
    // state upstream, never relays a downstream's.
    if (cfg_.nextHop.valid() && src.addr == cfg_.nextHop
        && shared_.hopGate.enabled()) {
        if (auto fb_text = msg.header(sip::HeaderId::Overload)) {
            HopFeedback fb;
            if (parseHopFeedback(*fb_text, &fb))
                shared_.hopGate.applyFeedback(src.addr, fb,
                                              p.sim().now());
            msg.removeFirstHeader(sip::HeaderId::Overload);
        }
    }
    // The top Via must be ours; pop it (§16.7).
    const auto &top = msg.topVia();
    if (!top || top->host != viaHost_) {
        ++shared_.counters.parseErrors;
        co_return;
    }
    auto key = sip::transactionKey(msg); // keyed by our branch
    msg.removeFirstHeader(sip::HeaderId::Via);

    // A chained stateful proxy absorbs the next hop's 100 Trying: it
    // already took transaction responsibility with its own TRYING, and
    // 100s are hop-by-hop (their job here was carrying the feedback).
    if (cfg_.stateful && cfg_.nextHop.valid()
        && msg.statusCode() == sip::status::kTrying)
        co_return;

    net::Addr dst{};
    std::uint64_t dst_conn = 0;
    bool routed = false;

    if (cfg_.stateful && key) {
        co_await shared_.txns.lock().acquire(p);
        co_await p.cpu(scaled(cfg_.costs.txnLookup), ccTm_);
        auto rec = shared_.txns.find(*key);
        if (rec) {
            co_await p.cpu(scaled(cfg_.costs.txnUpdate), ccTm_);
            dst = rec->upstreamAddr;
            dst_conn = rec->upstreamConnId;
            routed = true;
            sim::SimTime created = rec->createdAt;
            bool just_completed = false;
            bool hop_gated = false;
            if (msg.isFinal()
                && rec->state == TxnRecord::State::Proceeding) {
                rec->state = TxnRecord::State::Completed;
                just_completed = true;
                hop_gated = rec->hopGated;
                rec->hopGated = false;
                shared_.txns.scheduleExpiry(
                    rec, p.sim().now() + cfg_.txnLinger);
            }
            shared_.txns.lock().release();
            if (hop_gated)
                shared_.hopGate.noteCompleted(cfg_.nextHop);
            if (just_completed && unreliable()) {
                co_await shared_.retrans.lock().acquire(p);
                co_await p.cpu(cfg_.costs.timerCancel, ccTimer_);
                shared_.retrans.cancel(*key);
                shared_.retrans.lock().release();
            }
            // Store the forwarded response for retransmission replay.
            attachHopFeedback(msg, p.sim().now());
            co_await p.cpu(scaled(cfg_.costs.serialize), ccBuild_);
            std::string wire = msg.serialize();
            co_await shared_.txns.lock().acquire(p);
            rec->lastResponse = wire;
            shared_.txns.lock().release();
            SendAction action;
            action.wire = std::move(wire);
            action.dstAddr = dst;
            action.dstConnId = dst_conn;
            action.toUpstream = true;
            out->push_back(std::move(action));
            ++shared_.counters.forwards;
            if (just_completed)
                shared_.overload.recordServed(
                    p.sim().now(), p.sim().now() - created);
            co_return;
        }
        shared_.txns.lock().release();
    }

    // Stateless (or stray) response: route by the next Via.
    auto next = msg.topVia();
    if (!next) {
        ++shared_.counters.routeFailures;
        co_return;
    }
    auto via_addr = addrFromVia(*next);
    if (!via_addr) {
        ++shared_.counters.routeFailures;
        co_return;
    }
    dst = *via_addr;
    co_await resolveConn(p, dst, &dst_conn);
    routed = true;
    (void)routed;
    attachHopFeedback(msg, p.sim().now());
    co_await p.cpu(scaled(cfg_.costs.serialize), ccBuild_);
    SendAction action;
    action.wire = msg.serialize();
    action.dstAddr = dst;
    action.dstConnId = dst_conn;
    action.toUpstream = true;
    out->push_back(std::move(action));
    ++shared_.counters.forwards;
}

} // namespace siprox::core

#include "core/worker_loop.hh"

#include "sim/simulation.hh"

namespace siprox::core {

sim::Task
WorkerLoop::reclaimTxns(sim::Process &p, SharedState &shared,
                        const ProxyConfig &cfg, sim::SimTime now)
{
    static const auto cc_tm = sim::CostCenters::id("ser:tm");
    co_await shared.txns.lock().acquire(p);
    if (now == sim::kTimeNever)
        now = p.sim().now();
    std::size_t removed = shared.txns.cleanupExpired(now);
    if (removed) {
        co_await p.cpu(static_cast<sim::SimTime>(removed)
                           * cfg.costs.txnUpdate,
                       cc_tm);
    }
    shared.txns.lock().release();
}

sim::Task
WorkerLoop::datagramTimerTick(sim::Process &p, net::DatagramSocket &sock,
                              sim::SimTime now)
{
    static const auto cc_timer = sim::CostCenters::id("ser:timer");

    // Walk the global retransmission list (§3.2). The walk holds the
    // shared lock for its full duration, as OpenSER does.
    std::vector<RetransList::Due> due;
    std::vector<RetransList::TimedOut> timed_out;
    co_await shared_.retrans.lock().acquire(p);
    std::size_t visited = shared_.retrans.collectDue(now, due, timed_out);
    if (visited) {
        co_await p.cpu(static_cast<sim::SimTime>(visited)
                           * cfg_.costs.timerScanPerEntry,
                       cc_timer);
    }
    shared_.retrans.lock().release();

    shared_.counters.retransSent += due.size();
    for (auto &d : due)
        co_await sock.sendTo(p, d.dst, std::move(d.wire));

    // Timer B/F expiry: answer the caller with 408 and reclaim the
    // transaction so sustained loss cannot grow the table.
    for (auto &to : timed_out) {
        sim::SpanScope span(p);
        actions_.clear();
        co_await engine_.handleTimeout(p, to, &actions_);
        for (auto &action : actions_)
            co_await sock.sendTo(p, action.dstAddr,
                                 std::move(action.wire));
    }
}

} // namespace siprox::core

/**
 * @file
 * SIP location service: AoR user -> contact binding, stored in shared
 * memory behind a spin-then-yield lock, as OpenSER's usrloc module does
 * (MySQL persistence is write-behind and outside the measured path; see
 * DESIGN.md substitutions).
 */

#ifndef SIPROX_CORE_REGISTRAR_HH
#define SIPROX_CORE_REGISTRAR_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/sync.hh"
#include "sim/time.hh"
#include "sip/uri.hh"

namespace siprox::core {

/** One registered contact. */
struct Binding
{
    sip::SipUri contact;
    /** TCP connection the REGISTER arrived on (0 for UDP/SCTP). */
    std::uint64_t connId = 0;
    /** Absolute expiry instant; 0 means "never expires" (the engine's
     *  default — phones re-register within the run, and the pinned
     *  digests predate expiry). */
    sim::SimTime expiresAt = 0;
};

/**
 * The location database. Callers are responsible for charging CPU via
 * the cost model; this class only provides the shared-memory critical
 * sections.
 */
class Registrar
{
  public:
    /** Insert/refresh a binding. Must be called with the lock held. */
    void
    update(const std::string &user, Binding binding)
    {
        bindings_[user] = std::move(binding);
    }

    /** Lookup a binding. Must be called with the lock held. */
    std::optional<Binding>
    lookup(const std::string &user) const
    {
        auto it = bindings_.find(user);
        if (it == bindings_.end())
            return std::nullopt;
        return it->second;
    }

    /**
     * Expiry-aware lookup: a binding whose expiresAt has passed is
     * erased (lazy reclamation, as OpenSER's usrloc timer would) and
     * reported as absent. Must be called with the lock held.
     */
    std::optional<Binding>
    lookup(const std::string &user, sim::SimTime now)
    {
        auto it = bindings_.find(user);
        if (it == bindings_.end())
            return std::nullopt;
        if (it->second.expiresAt != 0 && it->second.expiresAt <= now) {
            bindings_.erase(it);
            return std::nullopt;
        }
        return it->second;
    }

    /** Sweep every expired binding; returns how many were reclaimed.
     *  Must be called with the lock held. */
    std::size_t
    expireOlderThan(sim::SimTime now)
    {
        std::size_t n = 0;
        for (auto it = bindings_.begin(); it != bindings_.end();) {
            if (it->second.expiresAt != 0
                && it->second.expiresAt <= now) {
                it = bindings_.erase(it);
                ++n;
            } else {
                ++it;
            }
        }
        return n;
    }

    std::size_t size() const { return bindings_.size(); }

    sim::SpinLock &lock() { return lock_; }

  private:
    sim::SpinLock lock_{"usrloc"};
    std::unordered_map<std::string, Binding> bindings_;
};

} // namespace siprox::core

#endif // SIPROX_CORE_REGISTRAR_HH

/**
 * @file
 * Hop-by-hop distributed overload control: the feedback advertisement
 * a downstream proxy piggybacks on responses (the simulated
 * `Overload:` header) and the per-destination throttle state an
 * upstream proxy keeps to gate forwarding (Hong/Huang/Yan's
 * comparative-study schemes; Shen & Schulzrinne for the TCP case).
 *
 * Three schemes, selectable per scenario:
 *  - OnOff: the degenerate restriction baseline — downstream says
 *    stop/go, upstream forwards nothing while stopped.
 *  - Rate: downstream computes an explicit admit rate from its
 *    occupancy/latency-EWMA signals; upstream meters INVITEs toward
 *    it through a token bucket at the granted rate.
 *  - Window: upstream may have at most W pending INVITE transactions
 *    toward the downstream; W tracks the advertised grant.
 *
 * The gate itself is plain arithmetic on shared state with no awaits,
 * so it costs nothing before a rejected INVITE would have paid the
 * routing/forwarding path, and it is atomic under the cooperative
 * scheduler without taking a lock.
 */

#ifndef SIPROX_CORE_HOPCTL_HH
#define SIPROX_CORE_HOPCTL_HH

#include <cstddef>
#include <string_view>
#include <vector>

#include "core/config.hh"
#include "net/addr.hh"
#include "sim/time.hh"

namespace siprox::core {

struct ProxyCounters;

/** One feedback advertisement, as carried by the Overload: header. */
struct HopFeedback
{
    FeedbackScheme scheme = FeedbackScheme::None;
    /** Rate grant (INVITEs per second); Rate scheme. */
    double rate = 0;
    /** Window grant (max pending INVITEs); Window scheme. */
    int window = 0;
    /** Go/stop; OnOff scheme. */
    bool on = true;
};

/**
 * Render @p fb into @p buf ("rate;r=...", "win;w=...", "onoff;on=...").
 * Returns the rendered length, 0 for FeedbackScheme::None or a buffer
 * too small. Writes no terminator; pair with string_view(buf, n) so
 * the value can be interned into a message arena without a heap
 * allocation.
 */
std::size_t renderHopFeedback(const HopFeedback &fb, char *buf,
                              std::size_t cap);

/** Parse an Overload: header value; false if malformed. */
bool parseHopFeedback(std::string_view text, HopFeedback *out);

/**
 * Upstream throttle state, one slot per downstream destination (a
 * chain hop has exactly one, but the table is general). Lives in the
 * proxy's shared memory next to the OverloadController.
 */
class HopThrottleTable
{
  public:
    enum class Gate
    {
        Admit,
        /** The grant is exhausted right now; the caller may park the
         *  request and retry, or reject it with 503. */
        Busy,
    };

    void configure(const HopControlConfig &cfg, ProxyCounters *counters);

    bool enabled() const { return cfg_.enabled(); }

    /** Consume a received advertisement from @p from. */
    void applyFeedback(net::Addr from, const HopFeedback &fb,
                       sim::SimTime now);

    /**
     * Gate one new INVITE toward @p dst. Window scheme: an Admit
     * reserves a pending slot that noteCompleted()/noteAborted() must
     * release exactly once. A grant older than cfg.grantTtl fails
     * open (counted): feedback rides the response stream, so a silent
     * downstream must not throttle us forever.
     */
    Gate tryAdmit(net::Addr dst, sim::SimTime now);

    /** Release a pending slot: the forwarded INVITE drew its final
     *  response (or timed out at Timer B). */
    void noteCompleted(net::Addr dst);

    /** Release a pending slot whose INVITE was never forwarded. */
    void noteAborted(net::Addr dst);

    /** OnOff scheme only: is the destination currently stopped? Used
     *  for the pre-parse drop peek; fresh grants required. */
    bool restricted(net::Addr dst, sim::SimTime now) const;

    // --- introspection (tests, digests) --------------------------------
    double grantedRate(net::Addr dst) const;
    int grantedWindow(net::Addr dst) const;
    int pendingToward(net::Addr dst) const;

  private:
    struct PerDest
    {
        net::Addr dst;
        HopFeedback fb;
        sim::SimTime fbAt = 0;
        bool sawFeedback = false;
        /** Rate gate: token bucket refilled at the granted rate. */
        double tokens = 0;
        sim::SimTime lastRefill = 0;
        /** Window gate: INVITEs forwarded, not yet answered. */
        int pending = 0;
    };

    PerDest *find(net::Addr dst);
    const PerDest *findExisting(net::Addr dst) const;

    HopControlConfig cfg_;
    ProxyCounters *counters_ = nullptr;
    std::vector<PerDest> dests_;
};

} // namespace siprox::core

#endif // SIPROX_CORE_HOPCTL_HH

/**
 * @file
 * Sharded location service for dispatched clusters. Each proxy
 * instance owns one shard of the AOR space, assigned by a consistent
 * hash ring shared with the dispatcher (so "which instance a REGISTER
 * is routed to" and "which instance's registrar stores it" agree by
 * construction). Non-owned lookups either serve from an
 * asynchronously-replicated local copy (staleReads) or forward the SIP
 * request itself to the owner instance over a real inter-proxy socket,
 * charging real parse/route/serialize costs there.
 *
 * The owner's registrar (core/registrar.hh) remains the authoritative
 * store; this class adds the ring, the replica store, and the pending
 * replication queue (drained by the proxy's replicator process after
 * ClusterMemberConfig::replicationLag).
 */

#ifndef SIPROX_CORE_LOCATION_HH
#define SIPROX_CORE_LOCATION_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/config.hh"
#include "core/registrar.hh"
#include "sim/sync.hh"
#include "sim/time.hh"

namespace siprox::core {

/**
 * Consistent-hash ring over instance indices: FNV-1a over "inst<i>#v<k>"
 * virtual-node labels. Deterministic, seed-free, and cheap enough to
 * consult per message.
 */
class HashRing
{
  public:
    /** (Re)build the ring for @p instances members x @p vnodes points. */
    void build(int instances, int vnodes);

    /** Owning instance for @p key, or -1 on an empty ring. */
    int owner(std::string_view key) const;

    bool empty() const { return ring_.empty(); }

    /** FNV-1a 64-bit. */
    static std::uint64_t hash(std::string_view s);

  private:
    /** (point, instance), sorted by point. */
    std::vector<std::pair<std::uint64_t, int>> ring_;
};

/**
 * Per-instance sharded location state. Callers charge CPU via the cost
 * model (mirroring Registrar's contract); the lock() guards the replica
 * store and the pending queue.
 */
class LocationService
{
  public:
    void configure(const ClusterMemberConfig &cfg);

    bool enabled() const { return cfg_.enabled(); }
    const ClusterMemberConfig &config() const { return cfg_; }
    const HashRing &ring() const { return ring_; }

    /** Owning instance index for @p user. */
    int owner(std::string_view user) const { return ring_.owner(user); }

    /** True when this instance's shard owns @p user. */
    bool
    owns(std::string_view user) const
    {
        return !enabled() || ring_.owner(user) == cfg_.instance;
    }

    /** SIP address of instance @p i (invalid Addr when out of range). */
    net::Addr
    peerAddr(int i) const
    {
        if (i < 0 || static_cast<std::size_t>(i) >= cfg_.peers.size())
            return net::Addr{};
        return cfg_.peers[static_cast<std::size_t>(i)];
    }

    // --- replica store (lock() held) ------------------------------------
    std::optional<Binding>
    replicaLookup(const std::string &user) const
    {
        auto it = replicas_.find(user);
        if (it == replicas_.end())
            return std::nullopt;
        return it->second;
    }

    void
    installReplica(const std::string &user, Binding binding)
    {
        replicas_[user] = std::move(binding);
    }

    std::size_t replicaSize() const { return replicas_.size(); }

    // --- pending replication queue (lock() held) ------------------------
    struct Pending
    {
        std::string user;
        std::string contact;
        sim::SimTime dueAt = 0;
    };

    /** Queue a binding write for push to the peers after the lag. */
    void
    queuePush(std::string user, std::string contact, sim::SimTime now)
    {
        pending_.push_back({std::move(user), std::move(contact),
                            now + cfg_.replicationLag});
    }

    /** Pop the next due entry (FIFO order == dueAt order). */
    bool
    popDue(sim::SimTime now, Pending &out)
    {
        if (pending_.empty() || pending_.front().dueAt > now)
            return false;
        out = std::move(pending_.front());
        pending_.pop_front();
        return true;
    }

    std::size_t pendingSize() const { return pending_.size(); }

    sim::SpinLock &lock() { return lock_; }

  private:
    ClusterMemberConfig cfg_;
    HashRing ring_;
    sim::SpinLock lock_{"locrepl"};
    std::unordered_map<std::string, Binding> replicas_;
    std::deque<Pending> pending_;
};

/** Render one replication datagram ("REPL <user> <contact>"). */
std::string renderReplication(const std::string &user,
                              const std::string &contact);

/** Parse a replication datagram; false on malformed input. */
bool parseReplication(std::string_view wire, std::string &user,
                      std::string &contact);

} // namespace siprox::core

#endif // SIPROX_CORE_LOCATION_HH

#include "core/udp_arch.hh"

#include "net/sctp.hh"
#include "net/sst.hh"
#include "net/udp.hh"
#include "sim/simulation.hh"

namespace siprox::core {

UdpArch::UdpArch(sim::Machine &machine, net::Host &host,
                 SharedState &shared, const ProxyConfig &cfg)
    : machine_(machine), host_(host), shared_(shared), cfg_(cfg)
{
}

void
UdpArch::start()
{
    if (cfg_.transport == Transport::Sctp)
        sock_ = &host_.sctpBind(cfg_.port);
    else if (cfg_.transport == Transport::Sst)
        sock_ = &host_.sstBind(cfg_.port);
    else
        sock_ = &host_.udpBind(cfg_.port);
    net::Addr addr = host_.addr(cfg_.port);
    for (int i = 0; i < cfg_.workers; ++i) {
        engines_.push_back(
            std::make_unique<Engine>(shared_, cfg_, addr, i));
        loops_.push_back(std::make_unique<WorkerLoop>(shared_, cfg_,
                                                      *engines_.back()));
        machine_.spawn("worker" + std::to_string(i), 0,
                       [this, i](sim::Process &p) {
                           return workerMain(p, i);
                       });
    }
    // §3.2: the timer process is essential for UDP (retransmissions).
    // It shares worker 0's engine (as OpenSER's timer does) but needs
    // its own WorkerLoop: loops must not be shared across processes.
    timerLoop_ = std::make_unique<WorkerLoop>(shared_, cfg_,
                                              *engines_[0]);
    machine_.spawn("timer", 0,
                   [this](sim::Process &p) { return timerMain(p); });
}

std::size_t
UdpArch::recvQueueDepth() const
{
    return sock_ ? sock_->queueDepth() : 0;
}

std::uint64_t
UdpArch::recvQueueDrops() const
{
    return sock_ ? sock_->overflowDrops() : 0;
}

void
UdpArch::appendTelemetryGauges(std::vector<ArchGauge> &out) const
{
    out.push_back({"arch.recvQueuePeak",
                   static_cast<double>(sock_ ? sock_->queuePeak() : 0)});
}

sim::Task
UdpArch::sendOne(sim::Process &p, net::Addr dst, std::string wire)
{
    return sock_->sendTo(p, dst, std::move(wire));
}

sim::Task
UdpArch::workerMain(sim::Process &p, int id)
{
    // Not a coroutine: picks the loop body once at startup. batchMax
    // <= 1 keeps the legacy one-message path verbatim (digest-pinned);
    // above that, workers drain bursts through recvBatch/sendBatch.
    if (host_.net().config().batchMax > 1)
        return workerBatched(p, id);
    return workerLegacy(p, id);
}

sim::Task
UdpArch::workerLegacy(sim::Process &p, int id)
{
    WorkerLoop &loop = *loops_[static_cast<std::size_t>(id)];
    while (!stop_) {
        net::Datagram dgram;
        co_await sock_->recvFrom(p, dgram);
        if (stop_)
            break;
        WorkerLoop::traceRxDatagram(p, dgram.src,
                                    dgram.payload.size());
        // The depth left behind after this dequeue is the occupancy
        // signal the admission decision inside handleMessage sees.
        loop.noteQueueDepth(recvQueueDepth());
        co_await loop.dispatch(
            p, std::move(dgram.payload), MsgSource{dgram.src, 0},
            [this](sim::Process &sp, SendAction action) {
                return sendOne(sp, action.dstAddr,
                               std::move(action.wire));
            });
    }
}

sim::Task
UdpArch::workerBatched(sim::Process &p, int id)
{
    WorkerLoop &loop = *loops_[static_cast<std::size_t>(id)];
    const int bmax = host_.net().config().batchMax;
    std::vector<net::Datagram> batch;
    std::vector<net::OutDatagram> outbox;
    while (!stop_) {
        // One simulated recvmmsg: waits for the first datagram, then
        // drains whatever else is queued (up to bmax) for one batched
        // kernel charge.
        co_await sock_->recvBatch(p, batch, bmax);
        if (stop_)
            break;
        std::size_t in_hand = batch.size();
        for (auto &dgram : batch) {
            WorkerLoop::traceRxDatagram(p, dgram.src,
                                        dgram.payload.size());
            --in_hand;
            // Occupancy = what is still queued in the kernel plus what
            // this worker drained but has not yet processed, so the
            // admission signal is batching-invariant.
            loop.noteDrainedBatch(recvQueueDepth(), in_hand);
            co_await loop.dispatchCollect(p, std::move(dgram.payload),
                                          MsgSource{dgram.src, 0},
                                          outbox, batch.size());
        }
        // One simulated sendmmsg flushes everything the batch emitted.
        co_await sock_->sendBatch(p, outbox);
    }
}

sim::Task
UdpArch::timerMain(sim::Process &p)
{
    while (!stop_) {
        co_await p.sleepFor(cfg_.timerTick);
        if (stop_)
            break;
        sim::SimTime now = p.sim().now();
        co_await WorkerLoop::reclaimTxns(p, shared_, cfg_, now);
        co_await timerLoop_->datagramTimerTick(p, *sock_, now);
    }
}

} // namespace siprox::core

#include "core/udp_arch.hh"

#include "net/sctp.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace siprox::core {

UdpArch::UdpArch(sim::Machine &machine, net::Host &host,
                 SharedState &shared, const ProxyConfig &cfg)
    : machine_(machine), host_(host), shared_(shared), cfg_(cfg)
{
}

void
UdpArch::start()
{
    if (cfg_.transport == Transport::Sctp)
        sctpSock_ = &host_.sctpBind(cfg_.port);
    else
        udpSock_ = &host_.udpBind(cfg_.port);
    net::Addr addr = host_.addr(cfg_.port);
    for (int i = 0; i < cfg_.workers; ++i) {
        engines_.push_back(
            std::make_unique<Engine>(shared_, cfg_, addr, i));
        machine_.spawn("worker" + std::to_string(i), 0,
                       [this, i](sim::Process &p) {
                           return workerMain(p, i);
                       });
    }
    // §3.2: the timer process is essential for UDP (retransmissions).
    machine_.spawn("timer", 0,
                   [this](sim::Process &p) { return timerMain(p); });
}

std::size_t
UdpArch::recvQueueDepth() const
{
    if (udpSock_)
        return udpSock_->queueDepth();
    return sctpSock_ ? sctpSock_->queueDepth() : 0;
}

std::uint64_t
UdpArch::recvQueueDrops() const
{
    if (udpSock_)
        return udpSock_->overflowDrops();
    return sctpSock_ ? sctpSock_->overflowDrops() : 0;
}

sim::Task
UdpArch::recvOne(sim::Process &p, net::Datagram &out)
{
    if (udpSock_)
        return udpSock_->recvFrom(p, out);
    return sctpSock_->recvFrom(p, out);
}

sim::Task
UdpArch::sendOne(sim::Process &p, net::Addr dst, std::string wire)
{
    if (udpSock_)
        return udpSock_->sendTo(p, dst, std::move(wire));
    return sctpSock_->sendTo(p, dst, std::move(wire));
}

sim::Task
UdpArch::workerMain(sim::Process &p, int id)
{
    Engine &engine = *engines_[static_cast<std::size_t>(id)];
    std::vector<SendAction> actions;
    while (!stop_) {
        net::Datagram dgram;
        co_await recvOne(p, dgram);
        if (stop_)
            break;
        if (sim::trace::enabled()) {
            sim::trace::log(p.sim().now(), "proxy-rx",
                            dgram.src.toString() + " " +
                                std::to_string(dgram.payload.size())
                                + "B");
        }
        // The depth left behind after this dequeue is the occupancy
        // signal the admission decision inside handleMessage sees.
        shared_.overload.noteQueueDepth(recvQueueDepth());
        // Causal span: one per datagram, engine work plus the sends.
        sim::SpanScope span(p);
        actions.clear();
        co_await engine.handleMessage(p, std::move(dgram.payload),
                                      MsgSource{dgram.src, 0}, actions);
        for (auto &action : actions)
            co_await sendOne(p, action.dstAddr, std::move(action.wire));
    }
}

sim::Task
UdpArch::timerMain(sim::Process &p)
{
    static const auto cc_timer = sim::CostCenters::id("ser:timer");
    static const auto cc_tm = sim::CostCenters::id("ser:tm");
    while (!stop_) {
        co_await p.sleepFor(cfg_.timerTick);
        if (stop_)
            break;
        sim::SimTime now = p.sim().now();

        // Terminated-transaction cleanup.
        co_await shared_.txns.lock().acquire(p);
        std::size_t removed = shared_.txns.cleanupExpired(now);
        if (removed) {
            co_await p.cpu(static_cast<sim::SimTime>(removed)
                               * cfg_.costs.txnUpdate,
                           cc_tm);
        }
        shared_.txns.lock().release();

        // Walk the global retransmission list (§3.2). The walk holds
        // the shared lock for its full duration, as OpenSER does.
        std::vector<RetransList::Due> due;
        std::vector<RetransList::TimedOut> timed_out;
        co_await shared_.retrans.lock().acquire(p);
        std::size_t visited =
            shared_.retrans.collectDue(now, due, timed_out);
        if (visited) {
            co_await p.cpu(static_cast<sim::SimTime>(visited)
                               * cfg_.costs.timerScanPerEntry,
                           cc_timer);
        }
        shared_.retrans.lock().release();

        shared_.counters.retransSent += due.size();
        for (auto &d : due)
            co_await sendOne(p, d.dst, std::move(d.wire));

        // Timer B/F expiry: answer the caller with 408 and reclaim
        // the transaction so sustained loss cannot grow the table.
        std::vector<SendAction> actions;
        for (auto &to : timed_out) {
            sim::SpanScope span(p);
            actions.clear();
            co_await engines_[0]->handleTimeout(p, to, &actions);
            for (auto &action : actions) {
                co_await sendOne(p, action.dstAddr,
                                 std::move(action.wire));
            }
        }
    }
}

} // namespace siprox::core

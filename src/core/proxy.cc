#include "core/proxy.hh"

namespace siprox::core {

Proxy::Proxy(sim::Machine &machine, net::Host &host, ProxyConfig cfg)
    : machine_(machine), host_(host), cfg_(cfg)
{
}

Proxy::~Proxy() = default;

void
Proxy::start()
{
    // A parked hop-gated INVITE would stall an event loop's single
    // coroutine — and every message behind it. Event-driven proxies
    // therefore always reject immediately instead of holding.
    if (resolveArchKind(cfg_.arch, cfg_.transport)
        == ArchKind::EventDriven)
        cfg_.overload.hop.holdMax = 0;
    shared_.overload.configure(cfg_.overload, &shared_.txns,
                               &shared_.counters);
    shared_.hopGate.configure(cfg_.overload.hop, &shared_.counters);
    arch_ = makeServerArch(machine_, host_, shared_, cfg_);
    arch_->start();
}

std::size_t
Proxy::requestQueueDepth() const
{
    return arch_ ? arch_->requestQueueDepth() : 0;
}

std::size_t
Proxy::recvQueueDepth() const
{
    return arch_ ? arch_->recvQueueDepth() : 0;
}

std::uint64_t
Proxy::recvQueueDrops() const
{
    return arch_ ? arch_->recvQueueDrops() : 0;
}

std::uint64_t
Proxy::acceptRefused() const
{
    return arch_ ? arch_->acceptRefused() : 0;
}

void
Proxy::requestStop()
{
    if (arch_)
        arch_->requestStop();
}

} // namespace siprox::core

#include "core/proxy.hh"

#include "core/tcp_arch.hh"
#include "core/udp_arch.hh"

namespace siprox::core {

Proxy::Proxy(sim::Machine &machine, net::Host &host, ProxyConfig cfg)
    : machine_(machine), host_(host), cfg_(cfg)
{
}

Proxy::~Proxy() = default;

void
Proxy::start()
{
    shared_.overload.configure(cfg_.overload, &shared_.txns,
                               &shared_.counters);
    switch (cfg_.transport) {
      case Transport::Udp:
      case Transport::Sctp:
        udp_ = std::make_unique<UdpArch>(machine_, host_, shared_,
                                         cfg_);
        udp_->start();
        break;
      case Transport::Tcp:
        tcp_ = std::make_unique<TcpArch>(machine_, host_, shared_,
                                         cfg_);
        tcp_->start();
        break;
    }
}

std::size_t
Proxy::requestQueueDepth() const
{
    if (tcp_)
        return tcp_->requestQueueDepth();
    return udp_ ? udp_->recvQueueDepth() : 0;
}

std::size_t
Proxy::recvQueueDepth() const
{
    if (tcp_)
        return tcp_->acceptBacklogDepth();
    return udp_ ? udp_->recvQueueDepth() : 0;
}

std::uint64_t
Proxy::recvQueueDrops() const
{
    return udp_ ? udp_->recvQueueDrops() : 0;
}

std::uint64_t
Proxy::acceptRefused() const
{
    return tcp_ ? tcp_->acceptRefused() : 0;
}

void
Proxy::requestStop()
{
    if (udp_)
        udp_->requestStop();
    if (tcp_)
        tcp_->requestStop();
}

} // namespace siprox::core

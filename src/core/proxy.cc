#include "core/proxy.hh"

#include <algorithm>

#include "net/datagram.hh"
#include "sim/profiler.hh"

namespace siprox::core {

Proxy::Proxy(sim::Machine &machine, net::Host &host, ProxyConfig cfg)
    : machine_(machine), host_(host), cfg_(cfg)
{
}

Proxy::~Proxy() = default;

void
Proxy::start()
{
    // A parked hop-gated INVITE would stall an event loop's single
    // coroutine — and every message behind it. Event-driven proxies
    // therefore always reject immediately instead of holding.
    if (resolveArchKind(cfg_.arch, cfg_.transport)
        == ArchKind::EventDriven)
        cfg_.overload.hop.holdMax = 0;
    shared_.overload.configure(cfg_.overload, &shared_.txns,
                               &shared_.counters);
    shared_.hopGate.configure(cfg_.overload.hop, &shared_.counters);
    if (cfg_.cluster.enabled()) {
        shared_.location.configure(cfg_.cluster);
        if (cfg_.cluster.instances > 1) {
            replSock_ = &host_.udpBind(cfg_.cluster.replPort);
            machine_.spawn("locpeer", 0, [this](sim::Process &p) {
                return locPeerMain(p);
            });
            machine_.spawn("replicator", 0, [this](sim::Process &p) {
                return replicatorMain(p);
            });
        }
    }
    arch_ = makeServerArch(machine_, host_, shared_, cfg_);
    arch_->start();
}

sim::Task
Proxy::locPeerMain(sim::Process &p)
{
    const sim::CostCenterId cc =
        sim::CostCenters::id("cluster:replicate");
    std::string user, contact;
    while (!clusterStop_) {
        net::Datagram dgram;
        co_await replSock_->recvFrom(p, dgram);
        if (clusterStop_)
            break;
        if (!parseReplication(dgram.payload, user, contact))
            continue;
        auto uri = sip::SipUri::parse(contact);
        if (!uri)
            continue;
        co_await shared_.location.lock().acquire(p);
        co_await p.cpu(cfg_.costs.replicaInstall, cc);
        shared_.location.installReplica(user,
                                        Binding{std::move(*uri), 0});
        shared_.location.lock().release();
        ++shared_.counters.locReplInstalls;
    }
}

sim::Task
Proxy::replicatorMain(sim::Process &p)
{
    const sim::SimTime tick = std::max<sim::SimTime>(
        sim::msecs(1), cfg_.cluster.replicationLag / 4);
    while (!clusterStop_) {
        co_await p.sleepFor(tick);
        for (;;) {
            LocationService::Pending due;
            co_await shared_.location.lock().acquire(p);
            bool have =
                shared_.location.popDue(p.sim().now(), due);
            shared_.location.lock().release();
            if (!have)
                break;
            std::string wire =
                renderReplication(due.user, due.contact);
            for (std::size_t i = 0;
                 i < cfg_.cluster.replPeers.size(); ++i) {
                if (static_cast<int>(i) == cfg_.cluster.instance)
                    continue;
                co_await replSock_->sendTo(
                    p, cfg_.cluster.replPeers[i], wire);
            }
        }
    }
}

std::size_t
Proxy::requestQueueDepth() const
{
    return arch_ ? arch_->requestQueueDepth() : 0;
}

std::size_t
Proxy::recvQueueDepth() const
{
    return arch_ ? arch_->recvQueueDepth() : 0;
}

std::uint64_t
Proxy::recvQueueDrops() const
{
    return arch_ ? arch_->recvQueueDrops() : 0;
}

std::uint64_t
Proxy::acceptRefused() const
{
    return arch_ ? arch_->acceptRefused() : 0;
}

void
Proxy::requestStop()
{
    clusterStop_ = true;
    if (arch_)
        arch_->requestStop();
}

} // namespace siprox::core

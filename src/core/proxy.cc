#include "core/proxy.hh"

#include "core/tcp_arch.hh"
#include "core/udp_arch.hh"

namespace siprox::core {

Proxy::Proxy(sim::Machine &machine, net::Host &host, ProxyConfig cfg)
    : machine_(machine), host_(host), cfg_(cfg)
{
}

Proxy::~Proxy() = default;

void
Proxy::start()
{
    switch (cfg_.transport) {
      case Transport::Udp:
      case Transport::Sctp:
        udp_ = std::make_unique<UdpArch>(machine_, host_, shared_,
                                         cfg_);
        udp_->start();
        break;
      case Transport::Tcp:
        tcp_ = std::make_unique<TcpArch>(machine_, host_, shared_,
                                         cfg_);
        tcp_->start();
        break;
    }
}

void
Proxy::requestStop()
{
    if (udp_)
        udp_->requestStop();
    if (tcp_)
        tcp_->requestStop();
}

} // namespace siprox::core

#include "core/overload.hh"

#include <algorithm>
#include <cmath>

#include "core/shared.hh"

namespace siprox::core {

const char *
overloadPolicyName(OverloadPolicy p)
{
    switch (p) {
      case OverloadPolicy::None:
        return "none";
      case OverloadPolicy::ThresholdReject:
        return "threshold-reject";
      case OverloadPolicy::RateThrottle:
        return "rate-throttle";
    }
    return "?";
}

void
OverloadController::configure(const OverloadConfig &cfg,
                              const TxnTable *txns,
                              ProxyCounters *counters)
{
    cfg_ = cfg;
    txns_ = txns;
    counters_ = counters;
    rate_ = cfg_.initialRate;
    tokens_ = cfg_.burstTokens;
    hopRate_ = cfg_.hop.initialRate;
    hopWindow_ = cfg_.hop.initialWindow;
    hopOn_ = true;
    hopNextAdjust_ = 0;
}

double
OverloadController::occupancy() const
{
    double occ = 0;
    if (txns_ && cfg_.txnTableCapacity > 0) {
        occ = static_cast<double>(txns_->size())
            / static_cast<double>(cfg_.txnTableCapacity);
    }
    if (cfg_.recvQueueCapacity > 0) {
        occ = std::max(occ,
                       static_cast<double>(queueDepth_)
                           / static_cast<double>(
                               cfg_.recvQueueCapacity));
    }
    return occ;
}

void
OverloadController::recordServed(sim::SimTime now, sim::SimTime latency)
{
    ewma_ = static_cast<sim::SimTime>(
        cfg_.ewmaAlpha * static_cast<double>(latency)
        + (1.0 - cfg_.ewmaAlpha) * static_cast<double>(ewma_));
    lastServed_ = now;
    if (servedSink_)
        servedSink_(latency);
    if (cfg_.policy == OverloadPolicy::RateThrottle)
        refill(now);
}

void
OverloadController::idleDecay(sim::SimTime now)
{
    if (ewma_ == 0 || lastServed_ == 0 || cfg_.ewmaIdleDecay <= 0)
        return;
    auto gap = now - lastServed_;
    if (gap < cfg_.ewmaIdleDecay)
        return;
    auto periods = gap / cfg_.ewmaIdleDecay;
    ewma_ = static_cast<sim::SimTime>(
        static_cast<double>(ewma_)
        * std::pow(1.0 - cfg_.ewmaAlpha,
                   static_cast<double>(periods)));
    lastServed_ += periods * cfg_.ewmaIdleDecay;
}

void
OverloadController::updateShedding(sim::SimTime now)
{
    idleDecay(now);
    double occ = occupancy();
    if (!shedding_) {
        if (occ >= cfg_.highWatermark || ewma_ >= cfg_.latencyHigh) {
            shedding_ = true;
            ++counters_->overloadShedEnters;
        }
    } else {
        if (occ <= cfg_.lowWatermark && ewma_ <= cfg_.latencyLow) {
            shedding_ = false;
            ++counters_->overloadShedExits;
        }
    }
}

void
OverloadController::refill(sim::SimTime now)
{
    if (lastRefill_ == 0 && nextAdjust_ == 0) {
        lastRefill_ = now;
        nextAdjust_ = now + cfg_.adjustInterval;
        return;
    }
    tokens_ = std::min(cfg_.burstTokens,
                       tokens_
                           + rate_ * sim::toSecs(now - lastRefill_));
    lastRefill_ = now;
    idleDecay(now);
    // AIMD on the serving-latency EWMA: multiplicative decrease above
    // target, additive increase below.
    while (nextAdjust_ <= now) {
        if (ewma_ > cfg_.latencyTarget)
            rate_ = std::max(cfg_.minRate, rate_ * cfg_.decreaseFactor);
        else
            rate_ = std::min(cfg_.maxRate,
                             rate_ + cfg_.increasePerInterval);
        nextAdjust_ += cfg_.adjustInterval;
    }
}

bool
OverloadController::queuePanicked() const
{
    return cfg_.recvQueueCapacity > 0
        && static_cast<double>(queueDepth_)
                / static_cast<double>(cfg_.recvQueueCapacity)
            >= cfg_.panicWatermark;
}

bool
OverloadController::panicDrop(sim::SimTime now)
{
    (void)now;
    if (!enabled())
        return false;
    // Panic keys on the receive queue alone: it answers "can we even
    // afford the parse", which is input-queue pressure. A full txn
    // table is no reason to drop ACKs, BYEs, or responses — those
    // *shrink* the table.
    if (!queuePanicked())
        return false;
    ++counters_->overloadPanicDrops;
    return true;
}

OverloadController::Admission
OverloadController::admitRequest(sim::SimTime now)
{
    switch (cfg_.policy) {
      case OverloadPolicy::None:
        return Admission::Admit;
      case OverloadPolicy::ThresholdReject:
        updateShedding(now);
        if (!shedding_)
            return Admission::Admit;
        ++counters_->overloadRejected;
        return Admission::Reject;
      case OverloadPolicy::RateThrottle:
        refill(now);
        if (tokens_ >= 1.0) {
            tokens_ -= 1.0;
            return Admission::Admit;
        }
        ++counters_->overloadThrottled;
        return Admission::Reject;
    }
    return Admission::Admit;
}

bool
OverloadController::tcpReadsPaused(sim::SimTime now)
{
    if (cfg_.policy != OverloadPolicy::ThresholdReject)
        return false;
    if (paused_) {
        if (now < pauseUntil_)
            return true;
        // Slice over: resume so at least one read pass runs and the
        // signals can decay; re-evaluated on the next query.
        paused_ = false;
        ++counters_->tcpReadResumes;
        return false;
    }
    // Reads pause on queue/table pressure only — never on the latency
    // signal. Pausing reads stalls in-flight work (responses, ACKs,
    // BYEs), which *raises* serving latency, so a latency-triggered
    // pause would sustain itself; 503 admission handles that signal.
    if (occupancy() < cfg_.highWatermark)
        return false;
    paused_ = true;
    pauseUntil_ = now + cfg_.pauseSlice;
    ++counters_->tcpReadPauses;
    return true;
}

bool
OverloadController::acceptsPaused(sim::SimTime now)
{
    switch (cfg_.policy) {
      case OverloadPolicy::None:
        return false;
      case OverloadPolicy::ThresholdReject:
        updateShedding(now);
        break;
      case OverloadPolicy::RateThrottle:
        refill(now);
        shedding_ = tokens_ < 1.0;
        break;
    }
    if (shedding_ && !acceptPaused_) {
        acceptPaused_ = true;
        ++counters_->tcpAcceptPauses;
    } else if (!shedding_) {
        acceptPaused_ = false;
    }
    return shedding_;
}

HopFeedback
OverloadController::advertiseFeedback(sim::SimTime now)
{
    HopFeedback fb;
    fb.scheme = cfg_.hop.scheme;
    if (!cfg_.hop.enabled())
        return fb;
    idleDecay(now);
    if (hopNextAdjust_ == 0)
        hopNextAdjust_ = now + cfg_.hop.adjustInterval;
    while (hopNextAdjust_ <= now) {
        const bool pressure = occupancy() >= cfg_.hop.occHigh
            || ewma_ > cfg_.hop.latencyTarget;
        switch (cfg_.hop.scheme) {
          case FeedbackScheme::None:
            break;
          case FeedbackScheme::Rate:
            // AIMD, like the local RateThrottle loop, but steered by
            // the hop knobs and advertised instead of enforced here.
            hopRate_ = pressure
                ? std::max(cfg_.hop.minRate,
                           hopRate_ * cfg_.hop.decreaseFactor)
                : std::min(cfg_.hop.maxRate,
                           hopRate_ + cfg_.hop.increasePerInterval);
            break;
          case FeedbackScheme::Window:
            hopWindow_ = pressure
                ? std::max(cfg_.hop.minWindow,
                           static_cast<int>(
                               static_cast<double>(hopWindow_)
                               * cfg_.hop.decreaseFactor))
                : std::min(cfg_.hop.maxWindow,
                           hopWindow_
                               + cfg_.hop.windowIncreasePerInterval);
            break;
          case FeedbackScheme::OnOff:
            // Hysteresis mirrors ThresholdReject: stop on pressure,
            // go again only once both signals are clearly low.
            if (hopOn_) {
                if (pressure)
                    hopOn_ = false;
            } else if (occupancy() <= cfg_.hop.occLow
                       && ewma_ <= cfg_.hop.latencyTarget) {
                hopOn_ = true;
            }
            break;
        }
        hopNextAdjust_ += cfg_.hop.adjustInterval;
    }
    fb.rate = hopRate_;
    fb.window = hopWindow_;
    fb.on = hopOn_;
    return fb;
}

} // namespace siprox::core

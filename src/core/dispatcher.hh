/**
 * @file
 * The cluster front-end dispatcher: one machine that terminates phone
 * traffic and routes each SIP message to one of N proxy instances —
 * the load-balancing layer OpenSIPS/Kamailio deployments put in front
 * of a proxy farm.
 *
 * The dispatcher is a transparent L7 relay: it peeks at each message
 * (method, Call-ID, request-URI / To AOR, top Via) to pick an
 * instance, then forwards the original wire bytes unmodified — no Via
 * insertion, no transaction state. REGISTERs are always pinned to the
 * AOR's owner instance (under every policy) so a binding lands in the
 * shard that owns it; the policy choice governs INVITE/ACK/BYE
 * placement, which is where consistent hashing pays off by keeping
 * in-dialog requests on the instance that owns the callee's binding.
 *
 * Over UDP the dispatcher relays datagrams; responses from instances
 * are routed back to the phone named by the top Via. Over TCP it
 * terminates phone connections, keeps one trunk connection per
 * instance, and learns phone-address -> connection aliases from the
 * Via/Contact of client traffic so trunk traffic can be routed back to
 * the right phone connection.
 */

#ifndef SIPROX_CORE_DISPATCHER_HH
#define SIPROX_CORE_DISPATCHER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hh"
#include "core/location.hh"
#include "net/network.hh"
#include "net/tcp.hh"
#include "net/udp.hh"
#include "sim/machine.hh"
#include "sip/message.hh"
#include "sip/parser.hh"

namespace siprox::core {

/** How the dispatcher places non-REGISTER requests. */
enum class DispatchPolicy
{
    /** Rotate over instances per request — the naive baseline. Blind
     *  to AOR ownership, so most INVITEs land on an instance that must
     *  miss-forward to the callee's owner. */
    RoundRobin,
    /** Consistent hash on Call-ID: all requests of one dialog stick to
     *  one instance (transaction affinity), but the instance is
     *  uncorrelated with the callee's shard. */
    HashCallId,
    /** Consistent hash on the callee AOR (request-URI user): requests
     *  land on the instance whose shard owns the callee's binding, so
     *  lookups are local. */
    HashAor,
};

const char *dispatchPolicyName(DispatchPolicy p);

/** nullptr if @p p can dispatch over @p t, else a static reason. */
const char *dispatchSupportError(DispatchPolicy p, Transport t);

/** Dispatcher configuration (built by the workload Topology). */
struct DispatcherConfig
{
    Transport transport = Transport::Udp;
    std::uint16_t port = 5060;
    DispatchPolicy policy = DispatchPolicy::HashAor;
    /** Receive loops over the shared UDP socket (TCP spawns one reader
     *  per connection instead, like the proxies it fronts). */
    int workers = 8;
    /** Virtual nodes per instance; must match the instances' location
     *  config so dispatch and shard ownership agree. */
    int vnodes = 64;
    /** SIP addresses of the proxy instances, index-aligned. */
    std::vector<net::Addr> instances;
    CostModel costs;
};

/** Dispatcher counters (monotonic; read by the runner and benches). */
struct DispatcherStats
{
    std::uint64_t messagesIn = 0;
    std::uint64_t requestsRouted = 0;
    std::uint64_t responsesRouted = 0;
    /** REGISTERs pinned to their AOR owner (subset of requestsRouted). */
    std::uint64_t registersRouted = 0;
    std::uint64_t peekFailures = 0;
    /** Messages with no routable instance/phone (dropped). */
    std::uint64_t dropsNoRoute = 0;
    std::uint64_t clientConnsAccepted = 0;
    /** Requests routed to each instance (balance accounting). */
    std::vector<std::uint64_t> toInstance;
};

/**
 * The front-end machine. Construct with its own machine and host, then
 * start() after every instance proxy has started (TCP trunks dial the
 * instances' listeners at t=0).
 */
class Dispatcher
{
  public:
    Dispatcher(sim::Machine &machine, net::Host &host,
               DispatcherConfig cfg);
    ~Dispatcher();

    Dispatcher(const Dispatcher &) = delete;
    Dispatcher &operator=(const Dispatcher &) = delete;

    void start();
    void requestStop();

    /** The address phones talk to. */
    net::Addr addr() const { return host_.addr(cfg_.port); }

    const DispatcherConfig &config() const { return cfg_; }
    const DispatcherStats &stats() const { return stats_; }
    sim::Machine &machine() const { return machine_; }

  private:
    /** Policy decision for one peeked request; -1 when unroutable. */
    int pickInstance(const sip::SipMessage &msg);

    /** Charge the peek + parse one message; nullopt on junk. */
    sim::Task peek(sim::Process &p, const std::string &wire,
                   sip::ParseResult *out);

    // --- UDP ------------------------------------------------------------
    sim::Task udpWorkerMain(sim::Process &p);
    sim::Task routeDatagram(sim::Process &p, net::Datagram dgram);

    // --- TCP ------------------------------------------------------------
    sim::Task acceptMain(sim::Process &p);
    sim::Task trunkMain(sim::Process &p, int instance);
    sim::Task clientConnMain(sim::Process &p,
                             std::shared_ptr<net::TcpConn> conn);
    sim::Task sendToInstance(sim::Process &p, int instance,
                             std::string wire);
    sim::Task sendToClientAddr(sim::Process &p, net::Addr phone,
                               std::string wire);

    sim::Machine &machine_;
    net::Host &host_;
    DispatcherConfig cfg_;
    DispatcherStats stats_;
    HashRing ring_;
    bool stop_ = false;
    std::uint64_t rr_ = 0;

    net::UdpSocket *sock_ = nullptr; // UDP mode

    net::TcpListener *listener_ = nullptr; // TCP mode
    /** One trunk connection per instance (shared: every client-conn
     *  reader forwards over them). */
    std::vector<std::shared_ptr<net::TcpConn>> trunks_;
    /** Instance SIP address -> instance index (Via-based response
     *  routing from client connections). */
    std::unordered_map<net::Addr, int, net::AddrHash> instanceByAddr_;
    /** Phone address (from Via sent-by / REGISTER Contact) -> the
     *  client connection it is reachable on. */
    std::unordered_map<net::Addr, std::shared_ptr<net::TcpConn>,
                       net::AddrHash>
        clientByAddr_;

    sim::CostCenterId ccPeek_;
    sim::CostCenterId ccRoute_;
};

} // namespace siprox::core

#endif // SIPROX_CORE_DISPATCHER_HH

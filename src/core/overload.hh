/**
 * @file
 * Overload control for the proxy: admission decisions past saturation
 * so the server sheds load deliberately instead of collapsing under
 * retransmission amplification (Hong et al., Shen & Schulzrinne).
 *
 * One controller instance lives in the proxy's shared memory. It
 * tracks three admission signals — transaction-table occupancy,
 * receive/request queue depth, and a serving-latency EWMA — and drives
 * the configured OverloadPolicy:
 *
 *  - None: every decision admits (the congestion-collapse baseline).
 *  - ThresholdReject: hysteresis on the signals; while shedding, new
 *    work (INVITEs) is answered with a stateless 503 + Retry-After.
 *  - RateThrottle: a token bucket caps admitted INVITEs; its rate is
 *    steered by an AIMD feedback loop on the serving-latency EWMA.
 *
 * Shedding is transport-aware. Datagram transports reject with a cheap
 * 503 (or silently drop above the panic watermark, where even
 * 503-generation cost is unaffordable). TCP additionally pauses
 * accepts and connection reads in bounded slices so kernel flow
 * control pushes back on clients; slices are bounded so the signals
 * can decay and reads resume (no livelock).
 *
 * Every input is simulated state or simulated time, so runs stay
 * deterministic and same-seed digests byte-identical.
 */

#ifndef SIPROX_CORE_OVERLOAD_HH
#define SIPROX_CORE_OVERLOAD_HH

#include <cstddef>
#include <functional>
#include <utility>

#include "core/config.hh"
#include "core/hopctl.hh"
#include "sim/time.hh"

namespace siprox::core {

struct ProxyCounters;
class TxnTable;

/**
 * Per-proxy overload controller (shared by all workers).
 */
class OverloadController
{
  public:
    /** Outcome of an admission decision for one new-work request. */
    enum class Admission
    {
        Admit,
        /** Answer with 503 + Retry-After (stateless, cheap). */
        Reject,
        /** Drop without replying (panic: pre-parse, datagram only). */
        Drop,
    };

    /**
     * Wire the controller to the proxy's shared state. Must be called
     * before any admission query.
     */
    void configure(const OverloadConfig &cfg, const TxnTable *txns,
                   ProxyCounters *counters);

    bool enabled() const { return cfg_.policy != OverloadPolicy::None; }

    /** Latest receive/request queue depth (sampled by the arch). */
    void noteQueueDepth(std::size_t depth) { queueDepth_ = depth; }

    /**
     * Queue-depth signal for a batched dequeue: @p behind messages
     * still queued in the kernel plus @p in_hand messages drained into
     * the worker's batch but not yet processed. Counting the batch as
     * its packet count (not one event) keeps the occupancy signal — and
     * the panic/shed thresholds riding on it — batching-invariant.
     */
    void
    noteDrainedBatch(std::size_t behind, std::size_t in_hand)
    {
        queueDepth_ = behind + in_hand;
    }

    /**
     * Record one served transaction: @p latency spans INVITE parse to
     * final-response forward, so it includes the backlog wait of the
     * response leg on either transport. Feeds the EWMA and, for
     * RateThrottle, the AIMD rate adjustment.
     */
    void recordServed(sim::SimTime now, sim::SimTime latency);

    /**
     * Decide whether even parsing is affordable. Checked before the
     * parse charge; true means drop the datagram silently (counted).
     * Never true for stream transports (they pause reads instead).
     */
    bool panicDrop(sim::SimTime now);

    /**
     * Admission decision for one new-work request (an INVITE). ACKs,
     * BYEs, and REGISTERs of admitted work are never rejected — that
     * is what preserves goodput: finish what you started.
     */
    Admission admitRequest(sim::SimTime now);

    /**
     * TCP: should this worker skip reading connections right now?
     * Pauses on queue/table occupancy (never the latency signal —
     * pausing reads stalls in-flight work, so a latency-triggered
     * pause would sustain itself) in bounded slices (cfg.pauseSlice)
     * with counted pause/resume transitions.
     */
    bool tcpReadsPaused(sim::SimTime now);

    /** TCP: should the supervisor stop draining the accept queue? */
    bool acceptsPaused(sim::SimTime now);

    /**
     * Downstream side of hop-by-hop control: the advertisement to
     * piggyback on an outgoing response right now. AIMD-steers the
     * granted rate/window (or the on/off hysteresis) from the same
     * occupancy and latency-EWMA signals the local policies use, on
     * cfg.hop.adjustInterval ticks. Scheme None returns a None
     * feedback (callers attach nothing).
     */
    HopFeedback advertiseFeedback(sim::SimTime now);

    /** Receive-queue occupancy at/past the panic watermark? Unlike
     *  panicDrop() this neither requires a local policy nor counts:
     *  hop-by-hop pre-parse drops consult it with local policy None. */
    bool queuePanicked() const;

    /** Currently shedding (ThresholdReject hysteresis state)? */
    bool shedding() const { return shedding_; }

    /** Serving-latency EWMA (diagnostics and tests). */
    sim::SimTime latencyEwma() const { return ewma_; }

    /** Current admitted rate (RateThrottle; diagnostics and tests). */
    double currentRate() const { return rate_; }

    /** Largest of the occupancy signals, in [0, 1+] (telemetry). */
    double occupancySignal() const { return occupancy(); }

    /** Last receive/request queue depth the arch reported. */
    std::size_t queueDepthSignal() const { return queueDepth_; }

    /** Hop-feedback advertisement state (telemetry; downstream role). */
    double hopGrantedRate() const { return hopRate_; }
    int hopGrantedWindow() const { return hopWindow_; }
    bool hopOn() const { return hopOn_; }

    /**
     * Install a per-served-transaction latency observer (windowed
     * telemetry). Called from recordServed with the serve latency;
     * empty (default) costs one branch per serve.
     */
    void setServedSink(std::function<void(sim::SimTime)> sink)
    {
        servedSink_ = std::move(sink);
    }

    const OverloadConfig &config() const { return cfg_; }

  private:
    /** Largest of the occupancy signals, in [0, 1+]. */
    double occupancy() const;

    /** Re-evaluate the hysteresis state from the current signals. */
    void updateShedding(sim::SimTime now);

    /** Decay the EWMA across service-free gaps (recovery guarantee). */
    void idleDecay(sim::SimTime now);

    /** Refill the token bucket and run due AIMD adjustments. */
    void refill(sim::SimTime now);

    OverloadConfig cfg_;
    const TxnTable *txns_ = nullptr;
    ProxyCounters *counters_ = nullptr;

    std::size_t queueDepth_ = 0;
    std::function<void(sim::SimTime)> servedSink_;
    sim::SimTime ewma_ = 0;
    sim::SimTime lastServed_ = 0;
    bool shedding_ = false;

    // RateThrottle state.
    double rate_ = 0;
    double tokens_ = 0;
    sim::SimTime lastRefill_ = 0;
    sim::SimTime nextAdjust_ = 0;

    // TCP pause-slice state.
    bool paused_ = false;
    sim::SimTime pauseUntil_ = 0;
    bool acceptPaused_ = false;

    // Hop-feedback advertisement state (downstream role).
    double hopRate_ = 0;
    int hopWindow_ = 0;
    bool hopOn_ = true;
    sim::SimTime hopNextAdjust_ = 0;
};

} // namespace siprox::core

#endif // SIPROX_CORE_OVERLOAD_HH

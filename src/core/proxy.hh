/**
 * @file
 * The OpenSER-like SIP proxy server. Construct with a machine and a
 * network host, pick a ProxyConfig (transport, architecture, and the
 * paper's §4/§5 knobs), then start(). Phones talk to it at addr().
 *
 * This is the library's primary public entry point; see README.md for
 * a quickstart.
 */

#ifndef SIPROX_CORE_PROXY_HH
#define SIPROX_CORE_PROXY_HH

#include <memory>

#include "core/arch.hh"
#include "core/config.hh"
#include "core/shared.hh"
#include "net/network.hh"
#include "net/udp.hh"
#include "sim/machine.hh"

namespace siprox::core {

/**
 * A SIP proxy bound to one host.
 */
class Proxy
{
  public:
    Proxy(sim::Machine &machine, net::Host &host, ProxyConfig cfg);
    ~Proxy();

    Proxy(const Proxy &) = delete;
    Proxy &operator=(const Proxy &) = delete;

    /**
     * Bind sockets and spawn the architecture's processes.
     * @throws std::invalid_argument for an unsupported arch x
     *         transport pairing (see archSupportError()).
     */
    void start();

    /** Ask every proxy process to exit at its next wakeup. */
    void requestStop();

    /** The address phones should send SIP traffic to. */
    net::Addr addr() const { return host_.addr(cfg_.port); }

    const ProxyConfig &config() const { return cfg_; }
    sim::Machine &machine() const { return machine_; }
    net::Host &host() const { return host_; }

    /** The running server architecture (null before start()). */
    const ServerArch *arch() const { return arch_.get(); }

    /** Shared-memory state (counters, tables) for tests and benches. */
    SharedState &shared() { return shared_; }
    const SharedState &shared() const { return shared_; }

    // --- overload observability (sampled by the workload runner) -------
    /** Worker request-queue depth: the TCP worker->supervisor channel;
     *  for architectures without IPC the socket receive queue. */
    std::size_t requestQueueDepth() const;
    /** Datagram receive-queue depth, or the TCP accept backlog. */
    std::size_t recvQueueDepth() const;
    /** Messages the proxy's socket dropped to receive-queue overflow. */
    std::uint64_t recvQueueDrops() const;
    /** TCP connects refused because the accept queue was full. */
    std::uint64_t acceptRefused() const;

  private:
    /** Cluster replication: install replicas pushed by shard owners. */
    sim::Task locPeerMain(sim::Process &p);
    /** Cluster replication: drain the pending queue after the lag. */
    sim::Task replicatorMain(sim::Process &p);

    sim::Machine &machine_;
    net::Host &host_;
    ProxyConfig cfg_;
    SharedState shared_;
    std::unique_ptr<ServerArch> arch_;
    /** Replication socket (clusters with >1 instance only). */
    net::UdpSocket *replSock_ = nullptr;
    bool clusterStop_ = false;
};

} // namespace siprox::core

#endif // SIPROX_CORE_PROXY_HH

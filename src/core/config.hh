/**
 * @file
 * Proxy configuration: transport, architecture, worker counts, and the
 * §4.3/§5 knobs (supervisor priority, idle timeout, fd cache, idle
 * management strategy, event-driven IPC).
 */

#ifndef SIPROX_CORE_CONFIG_HH
#define SIPROX_CORE_CONFIG_HH

#include <cstdint>

#include "core/cost_model.hh"
#include "sim/time.hh"

namespace siprox::core {

/** Network transport the proxy speaks to phones. */
enum class Transport
{
    Udp,
    Tcp,
    Sctp,
};

const char *transportName(Transport t);

/** §6: process-per-worker vs threads sharing one address space. */
enum class ConcurrencyModel
{
    Process,
    Thread,
};

/** Idle TCP connection management strategy (§5.2 vs §5.3). */
enum class IdleStrategy
{
    /** Walk every connection object under the hash lock (baseline). */
    LinearScan,
    /** Timeout-ordered priority queues (the paper's fix). */
    PriorityQueue,
};

/** Full proxy configuration. */
struct ProxyConfig
{
    Transport transport = Transport::Udp;
    /** Worker processes; the paper uses 24 for UDP and 32 for TCP. */
    int workers = 24;
    /** Stateful proxies absorb retransmissions and send 100 Trying. */
    bool stateful = true;
    /**
     * Digest authentication (related work: Nahum et al. found it the
     * single largest performance factor). Requests without credentials
     * are challenged with 401; credentialed ones pay a verification
     * plus user-database cost per request.
     */
    bool authenticate = false;
    /**
     * Redirect-server mode (paper §2): instead of proxying, answer
     * INVITEs with 302 Moved Temporarily carrying the registered
     * contact; callers then signal the callee directly. Datagram
     * transports only (phones do not accept TCP connections).
     */
    bool redirect = false;
    std::uint16_t port = 5060;

    // --- TCP architecture knobs -------------------------------------------
    ConcurrencyModel concurrency = ConcurrencyModel::Process;
    /** §5.2 fix: per-worker cache of passed descriptors. */
    bool fdCache = false;
    /** §5.3 fix: priority-queue idle management. */
    IdleStrategy idleStrategy = IdleStrategy::LinearScan;
    /** Idle connection timeout (OpenSER default 120 s; paper uses 10 s). */
    sim::SimTime idleTimeout = sim::secs(10);
    /** Supervisor nice value; the paper elevates it to -20. */
    int supervisorNice = -20;
    /** Timer tick driving idle scans (supervisor and workers). */
    sim::SimTime idleScanInterval = sim::msecs(10);
    /** §6: never block in IPC sends (prevents the deadlock). */
    bool eventDrivenIpc = false;
    /** Capacity of each supervisor->worker dispatch channel. */
    int dispatchChannelCapacity = 64;
    /** Capacity of the shared worker->supervisor request channel. */
    int requestChannelCapacity = 512;

    // --- stateful timer engine ---------------------------------------------
    /** Tick of the timer process scanning the retransmission list. */
    sim::SimTime timerTick = sim::msecs(100);
    /** Completed transactions linger this long before cleanup. */
    sim::SimTime txnLinger = sim::secs(1);

    CostModel costs;
};

} // namespace siprox::core

#endif // SIPROX_CORE_CONFIG_HH

/**
 * @file
 * Proxy configuration: transport, architecture, worker counts, and the
 * §4.3/§5 knobs (supervisor priority, idle timeout, fd cache, idle
 * management strategy, event-driven IPC).
 */

#ifndef SIPROX_CORE_CONFIG_HH
#define SIPROX_CORE_CONFIG_HH

#include <cstdint>
#include <vector>

#include "core/cost_model.hh"
#include "net/addr.hh"
#include "sim/time.hh"

namespace siprox::core {

/** Network transport the proxy speaks to phones. */
enum class Transport
{
    Udp,
    Tcp,
    Sctp,
    /** TLS over TCP (RFC 3261 sips, port 5061): TCP's byte stream
     *  plus a simulated handshake, session resumption, and per-record
     *  crypto cost. */
    Tls,
    /** SST/QUIC-style structured streams: lightweight per-call streams
     *  multiplexed over a datagram substrate — message-oriented at the
     *  API like UDP/SCTP, ordered within each stream, with cheap
     *  stream setup/teardown instead of per-connection state. */
    Sst,
};

const char *transportName(Transport t);

/** True for byte-stream transports carried over per-connection
 *  handles (TCP and TLS); datagram-substrate transports are false. */
constexpr bool
isStreamTransport(Transport t)
{
    return t == Transport::Tcp || t == Transport::Tls;
}

/**
 * Server architecture: how sockets, processes, and connection
 * ownership are arranged (independent of the wire transport, though
 * not every pairing is meaningful — see archSupportError()).
 */
enum class ArchKind
{
    /** Transport-implied, as OpenSER hard-wires it: TCP gets the
     *  supervisor/worker design, datagram transports the symmetric
     *  workers. The default, so existing configs keep their exact
     *  pre-refactor behaviour. */
    Auto,
    /** §3.1 / Figure 1: one supervisor accepting, assigning, and
     *  answering blocking fd requests over IPC; N workers owning
     *  connections. TCP only. */
    SupervisorWorker,
    /** §3.2 / Figure 2: N identical workers all receiving from one
     *  shared socket; kernel does the demultiplexing. Datagram
     *  transports only. */
    SymmetricWorker,
    /** The modern redesign the paper's analysis points at: one
     *  process per core running a readiness loop, non-blocking
     *  accept/read, a shared descriptor table instead of fd-passing
     *  IPC, and per-core priority-queue idle management. Works over
     *  every transport. */
    EventDriven,
};

const char *archKindName(ArchKind k);

/** Resolve Auto to the transport-implied concrete architecture. */
ArchKind resolveArchKind(ArchKind k, Transport t);

/** nullptr if @p k can serve @p t, else a static reason string. */
const char *archSupportError(ArchKind k, Transport t);

/** §6: process-per-worker vs threads sharing one address space. */
enum class ConcurrencyModel
{
    Process,
    Thread,
};

/** Idle TCP connection management strategy (§5.2 vs §5.3). */
enum class IdleStrategy
{
    /** Walk every connection object under the hash lock (baseline). */
    LinearScan,
    /** Timeout-ordered priority queues (the paper's fix). */
    PriorityQueue,
};

/** Overload-control policy (beyond-saturation behaviour). */
enum class OverloadPolicy
{
    /** Accept everything; the congestion-collapse baseline. */
    None,
    /** Reject new work with 503 + Retry-After above a high watermark,
     *  re-admit below a low watermark (hysteresis). */
    ThresholdReject,
    /** Token-bucket admission whose rate is tuned by a feedback loop
     *  on measured serving latency (AIMD). */
    RateThrottle,
};

const char *overloadPolicyName(OverloadPolicy p);

/**
 * Hop-by-hop distributed overload control scheme (the comparative
 * study's three feedback families). A downstream proxy piggybacks an
 * `Overload:` header on every response it sends upstream; the upstream
 * proxy keeps per-destination throttle state and gates new INVITEs
 * toward that destination before spending routing/forwarding cost.
 */
enum class FeedbackScheme
{
    /** No feedback; purely local control (the collapse baseline). */
    None,
    /** Degenerate on/off restriction: downstream says stop/go. */
    OnOff,
    /** Explicit rate grant: downstream computes an admit rate from its
     *  occupancy/latency-EWMA signals and advertises it (cps). */
    Rate,
    /** Window grant: upstream may have at most W pending INVITE
     *  transactions toward the downstream; W tracks feedback. */
    Window,
};

const char *feedbackSchemeName(FeedbackScheme s);

/**
 * Knobs for hop-by-hop distributed overload control. One struct serves
 * both roles a chained proxy plays: the downstream advertiser (AIMD
 * steering of the granted rate/window from the local overload signals)
 * and the upstream gate (per-destination throttle state fed by the
 * advertisements it receives).
 */
struct HopControlConfig
{
    FeedbackScheme scheme = FeedbackScheme::None;

    bool enabled() const { return scheme != FeedbackScheme::None; }

    // --- downstream advertiser -----------------------------------------
    /** Advertisement update tick (AIMD step period). */
    sim::SimTime adjustInterval = sim::msecs(50);
    /** Occupancy entering/leaving the restricted state. */
    double occHigh = 0.85;
    double occLow = 0.50;
    /** Serving-latency EWMA the advertiser steers toward. */
    sim::SimTime latencyTarget = sim::msecs(60);
    /** Rate grant: first advertisement and AIMD bounds/steps (cps). */
    double initialRate = 1000;
    double minRate = 50;
    double maxRate = 1e6;
    double decreaseFactor = 0.85;
    double increasePerInterval = 50;
    /** Window grant: first advertisement and bounds. Decrease is
     *  multiplicative (decreaseFactor), increase is additive
     *  (windowIncreasePerInterval slots per tick). */
    int initialWindow = 32;
    int minWindow = 1;
    int maxWindow = 4096;
    /** Additive window growth per adjust tick. The default +1 is the
     *  classic conservative AIMD; a bottleneck whose operating window
     *  is large needs a faster climb or it idles for seconds after
     *  every multiplicative cut. */
    int windowIncreasePerInterval = 1;

    // --- upstream gate -------------------------------------------------
    /** Token-bucket burst capacity for the rate gate. */
    double burstTokens = 16;
    /** Feedback older than this fails open (admit): a grant must not
     *  outlive the response stream that carries its refreshes. */
    sim::SimTime grantTtl = sim::secs(2);
    /** If nonzero, a gated INVITE is parked (the `throttled` trace
     *  wait state) up to this long for a grant before being rejected.
     *  Forced to 0 under the event-driven architecture, whose loops
     *  must never block. */
    sim::SimTime holdMax = 0;
    /** Re-check period while parked. */
    sim::SimTime holdTick = sim::msecs(10);
    /** Retry-After carried in hop-throttle 503 rejections. */
    int retryAfterSecs = 1;
};

/**
 * Overload-control knobs. Admission signals are transaction-table
 * occupancy, receive/request queue depth, and a serving-latency EWMA;
 * shedding is transport-aware: datagram transports answer with a cheap
 * stateless 503 (or silently drop past the panic threshold), TCP
 * additionally pauses accepts and connection reads so kernel flow
 * control pushes back on clients.
 */
struct OverloadConfig
{
    OverloadPolicy policy = OverloadPolicy::None;

    // --- admission signals ---------------------------------------------
    /** Transaction-table occupancy denominator (map entries; the table
     *  holds two keys per record). */
    std::size_t txnTableCapacity = 1 << 17;
    /** Receive-queue occupancy denominator. Keep in sync with
     *  net::NetConfig::udpRecvQueue for datagram transports. */
    std::size_t recvQueueCapacity = 4096;
    /** Serving-latency EWMA smoothing factor. */
    double ewmaAlpha = 0.2;
    /** With no served transactions for this long, the EWMA decays as
     *  if a zero-latency sample arrived each period — otherwise one
     *  Timer B expiry could freeze shedding on with nothing left to
     *  serve that would bring the average back down. */
    sim::SimTime ewmaIdleDecay = sim::msecs(100);

    // --- ThresholdReject -----------------------------------------------
    /** Start shedding when any occupancy signal reaches this. */
    double highWatermark = 0.85;
    /** Stop shedding when every occupancy signal falls back here. */
    double lowWatermark = 0.50;
    /** Latency bounds entering/leaving the shedding state. */
    sim::SimTime latencyHigh = sim::msecs(60);
    sim::SimTime latencyLow = sim::msecs(15);
    /** Above this occupancy even 503 generation is too expensive:
     *  datagram transports drop silently (stateless, pre-parse). */
    double panicWatermark = 0.97;
    /** Retry-After value carried in 503 rejections. */
    int retryAfterSecs = 1;

    // --- TCP backpressure ------------------------------------------------
    /** While shedding, reads/accepts pause in slices this long, then
     *  resume so the admission signals can decay (no livelock). */
    sim::SimTime pauseSlice = sim::msecs(20);

    // --- RateThrottle -----------------------------------------------------
    /** Initial admitted-INVITE rate (per second). */
    double initialRate = 20000;
    double minRate = 200;
    double maxRate = 1e6;
    /** Token-bucket burst capacity. */
    double burstTokens = 64;
    /** Feedback-loop tick. */
    sim::SimTime adjustInterval = sim::msecs(50);
    /** Serving-latency target the loop steers toward. */
    sim::SimTime latencyTarget = sim::msecs(15);
    /** Multiplicative decrease when above target. */
    double decreaseFactor = 0.85;
    /** Additive increase (per tick) when below target. */
    double increasePerInterval = 400;

    /** Hop-by-hop distributed control (off by default). */
    HopControlConfig hop;
};

/**
 * One proxy's view of its cluster membership (core/location.hh). The
 * workload Topology fills this in for every instance of a dispatched
 * cluster; the default (instances == 0) means "not clustered" and
 * leaves every single-proxy and chain code path untouched.
 */
struct ClusterMemberConfig
{
    /** This proxy's instance index (0-based). */
    int instance = -1;
    /** Cluster size; 0 disables every cluster code path. */
    int instances = 0;
    /** Virtual nodes per instance on the consistent-hash ring. Must
     *  match the dispatcher's so AOR ownership agrees end to end. */
    int vnodes = 64;
    /** Serve reads from async-replicated bindings when the local shard
     *  does not own the AOR (staleness-for-locality trade; off means
     *  every non-owned lookup forwards to the owner instance). */
    bool staleReads = false;
    /** Replication staleness knob: a binding written at t is pushed to
     *  the peers no earlier than t + replicationLag. */
    sim::SimTime replicationLag = sim::msecs(50);
    /** SIP addresses of every instance (index-aligned), for the
     *  cache-miss forwarding path. */
    std::vector<net::Addr> peers;
    /** Replication-socket addresses of every instance. */
    std::vector<net::Addr> replPeers;
    /** UDP port the replication receiver binds. */
    std::uint16_t replPort = 5070;

    bool enabled() const { return instances > 0; }
};

/** Full proxy configuration. */
struct ProxyConfig
{
    Transport transport = Transport::Udp;
    /** Server architecture (Auto: OpenSER's transport-implied map). */
    ArchKind arch = ArchKind::Auto;
    /** Worker processes; the paper uses 24 for UDP and 32 for TCP.
     *  EventDriven ignores this and runs one loop per core. */
    int workers = 24;
    /** Stateful proxies absorb retransmissions and send 100 Trying. */
    bool stateful = true;
    /**
     * Digest authentication (related work: Nahum et al. found it the
     * single largest performance factor). Requests without credentials
     * are challenged with 401; credentialed ones pay a verification
     * plus user-database cost per request.
     */
    bool authenticate = false;
    /**
     * Redirect-server mode (paper §2): instead of proxying, answer
     * INVITEs with 302 Moved Temporarily carrying the registered
     * contact; callers then signal the callee directly. Datagram
     * transports only (phones do not accept TCP connections).
     */
    bool redirect = false;
    std::uint16_t port = 5060;

    // --- TCP architecture knobs -------------------------------------------
    ConcurrencyModel concurrency = ConcurrencyModel::Process;
    /** §5.2 fix: per-worker cache of passed descriptors. */
    bool fdCache = false;
    /** §5.3 fix: priority-queue idle management. */
    IdleStrategy idleStrategy = IdleStrategy::LinearScan;
    /** Idle connection timeout (OpenSER default 120 s; paper uses 10 s). */
    sim::SimTime idleTimeout = sim::secs(10);
    /** Supervisor nice value; the paper elevates it to -20. */
    int supervisorNice = -20;
    /** Timer tick driving idle scans (supervisor and workers). */
    sim::SimTime idleScanInterval = sim::msecs(10);
    /** §6: never block in IPC sends (prevents the deadlock). */
    bool eventDrivenIpc = false;
    /** Capacity of each supervisor->worker dispatch channel. */
    int dispatchChannelCapacity = 64;
    /** Capacity of the shared worker->supervisor request channel. */
    int requestChannelCapacity = 512;

    // --- stateful timer engine ---------------------------------------------
    /** Tick of the timer process scanning the retransmission list. */
    sim::SimTime timerTick = sim::msecs(100);
    /** Completed transactions linger this long before cleanup. */
    sim::SimTime txnLinger = sim::secs(1);

    /** Overload control (off by default: the collapse baseline). */
    OverloadConfig overload;

    /**
     * Next proxy in a multi-hop chain. When valid, every non-REGISTER
     * request is forwarded there (no registrar consult) and new
     * INVITEs pass the hop-by-hop throttle gate first; REGISTERs stay
     * local (phones register at their home proxy). Invalid (default):
     * this proxy is the chain destination and routes normally.
     */
    net::Addr nextHop{};

    /**
     * Base of the per-worker Via-branch salt. Chained proxies MUST use
     * disjoint bases: branches key transaction records, and a proxy's
     * table holds both its own client records and server records keyed
     * by its upstream's branches — identical generator streams on two
     * hops collide there and eat each other's INVITEs as
     * "retransmissions". Single proxies keep the historical default
     * (existing digest goldens pin the exact wire bytes).
     */
    std::uint64_t branchSaltBase = 0x5150;

    /** Cluster membership (disabled by default). */
    ClusterMemberConfig cluster;

    CostModel costs;
};

} // namespace siprox::core

#endif // SIPROX_CORE_CONFIG_HH

/**
 * @file
 * Lifecycle boilerplate for move-only IPC message types.
 *
 * GCC 12 miscompiles by-value coroutine parameters of *aggregate* type
 * holding move-only members: the compiler materialises the argument
 * twice (once into the coroutine frame, once for the body), and the two
 * copies double-destroy the move-only member. Any user-declared
 * constructor takes the type out of aggregate-land (C++20 [dcl.init.aggr])
 * and off that code path, so every message type passed by value into a
 * coroutine declares its lifecycle through this macro instead of
 * hand-writing member-by-member move operations.
 *
 * SIPROX_IPC_MSG_LIFECYCLE(T) declares, inside the class body of T:
 *  - a defaulted default constructor (user-declared => non-aggregate),
 *  - defaulted noexcept move construction/assignment,
 *  - deleted copy construction/assignment (messages carry descriptors).
 *
 * Keep any value constructors next to the macro; being user-declared
 * they reinforce the non-aggregate property rather than weaken it.
 */

#ifndef SIPROX_CORE_IPC_MSG_HH
#define SIPROX_CORE_IPC_MSG_HH

#define SIPROX_IPC_MSG_LIFECYCLE(T)                                     \
    T() = default;                                                      \
    T(T &&) noexcept = default;                                         \
    T &operator=(T &&) noexcept = default;                              \
    T(const T &) = delete;                                              \
    T &operator=(const T &) = delete

#endif // SIPROX_CORE_IPC_MSG_HH

#include "core/event_arch.hh"

#include <algorithm>

#include "net/error.hh"
#include "net/sctp.hh"
#include "net/sst.hh"
#include "net/udp.hh"
#include "sim/pollable.hh"
#include "sim/simulation.hh"

namespace siprox::core {

EventArch::EventArch(sim::Machine &machine, net::Host &host,
                     SharedState &shared, const ProxyConfig &cfg)
    : machine_(machine), host_(host), shared_(shared), cfg_(cfg),
      ccPoll_(sim::CostCenters::id("ser:io_wait")),
      ccConnHash_(sim::CostCenters::id("ser:tcpconn_hash")),
      ccScan_(sim::CostCenters::id("ser:tcpconn_timeout")),
      ccKernAccept_(sim::CostCenters::id("kernel:tcp_accept"))
{
}

EventArch::~EventArch() = default;

void
EventArch::start()
{
    if (tcpMode()) {
        listener_ = &host_.tcpListen(cfg_.port);
    } else if (cfg_.transport == Transport::Sctp) {
        sock_ = &host_.sctpBind(cfg_.port);
    } else if (cfg_.transport == Transport::Sst) {
        sock_ = &host_.sstBind(cfg_.port);
    } else {
        sock_ = &host_.udpBind(cfg_.port);
    }
    // One loop per core: the whole design premise. cfg_.workers is
    // deliberately ignored (documented on ArchKind::EventDriven).
    int n = machine_.scheduler().cores();
    if (n < 1)
        n = 1;
    net::Addr addr = host_.addr(cfg_.port);
    for (int i = 0; i < n; ++i) {
        auto l = std::make_unique<Loop>();
        l->id = i;
        l->engine = std::make_unique<Engine>(shared_, cfg_, addr, i);
        l->wloop = std::make_unique<WorkerLoop>(shared_, cfg_,
                                               *l->engine);
        loops_.push_back(std::move(l));
        machine_.spawn("ev_loop" + std::to_string(i), 0,
                       [this, i](sim::Process &p) {
                           return tcpMode() ? loopMain(p, i)
                                            : loopMainDatagram(p, i);
                       });
    }
    timerLoop_ = std::make_unique<WorkerLoop>(shared_, cfg_,
                                              *loops_[0]->engine);
    machine_.spawn("timer", 0,
                   [this](sim::Process &p) { return timerMain(p); });
}

std::size_t
EventArch::recvQueueDepth() const
{
    if (listener_)
        return listener_->backlogDepth();
    return sock_ ? sock_->queueDepth() : 0;
}

std::uint64_t
EventArch::recvQueueDrops() const
{
    return sock_ ? sock_->overflowDrops() : 0;
}

std::uint64_t
EventArch::acceptRefused() const
{
    return listener_ ? listener_->backlogRefused() : 0;
}

void
EventArch::appendTelemetryGauges(std::vector<ArchGauge> &out) const
{
    std::size_t owned = 0, peer_fds = 0, busy = 0;
    for (const auto &l : loops_) {
        owned += l->owned.size();
        peer_fds += l->peerFds.size();
        busy += l->busy.size();
    }
    out.push_back({"arch.ownedConns", static_cast<double>(owned)});
    out.push_back({"arch.peerFds", static_cast<double>(peer_fds)});
    out.push_back({"arch.busyConns", static_cast<double>(busy)});
    if (sock_) {
        out.push_back({"arch.recvQueuePeak",
                       static_cast<double>(sock_->queuePeak())});
    }
}

// ---------------------------------------------------------------------------
// TCP readiness loop
// ---------------------------------------------------------------------------

sim::Task
EventArch::loopMain(sim::Process &p, int id)
{
    Loop &l = *loops_[static_cast<std::size_t>(id)];
    l.nextScan = p.sim().now() + cfg_.idleScanInterval;
    std::vector<sim::Pollable *> items;
    std::vector<std::uint64_t> item_conn; // 0 = listener slot
    std::vector<int> ready;
    while (!stop_) {
        shared_.overload.noteQueueDepth(listener_->backlogDepth());
        const bool reads_paused =
            shared_.overload.tcpReadsPaused(p.sim().now());
        const bool accepts_paused =
            shared_.overload.acceptsPaused(p.sim().now());
        items.clear();
        item_conn.clear();
        if (!accepts_paused) {
            items.push_back(listener_);
            item_conn.push_back(0);
        }
        const int n = static_cast<int>(l.ownedOrder.size());
        for (int k = 0; !reads_paused && k < n; ++k) {
            std::uint64_t cid = l.ownedOrder[static_cast<std::size_t>(
                (l.rrCursor + k) % n)];
            auto it = l.owned.find(cid);
            if (it == l.owned.end() || !it->second.valid())
                continue;
            items.push_back(&it->second.readable());
            item_conn.push_back(cid);
        }
        sim::SimTime timeout = l.nextScan - p.sim().now();
        if ((reads_paused || accepts_paused)
            && cfg_.overload.pauseSlice < timeout)
            timeout = cfg_.overload.pauseSlice;
        if (timeout < 0)
            timeout = 0;
        // Nothing of ours ready and we would block: take one ready
        // connection from a backlogged sibling instead of idling.
        if (timeout > 0 && !reads_paused) {
            bool any_ready = false;
            for (sim::Pollable *item : items) {
                if (item->pollReady()) {
                    any_ready = true;
                    break;
                }
            }
            if (!any_ready) {
                bool stole = false;
                co_await loopSteal(p, l, &stole);
                if (stole)
                    continue;
            }
        }
        co_await sim::pollAll(p, items, timeout, ready);
        if (stop_)
            break;
        co_await p.cpu(cfg_.costs.pollOverhead, ccPoll_);
        if (n > 0 && !ready.empty())
            l.rrCursor = (l.rrCursor + 1) % n;
        for (int idx : ready) {
            std::uint64_t cid =
                item_conn[static_cast<std::size_t>(idx)];
            if (cid == 0)
                co_await loopAccept(p, l, l.nextScan);
            else if (l.owned.count(cid)) // revalidate: batch-mates can
                co_await loopReadConn(p, l, cid); // retire each other
            if (stop_)
                co_return;
        }
        if (p.sim().now() >= l.nextScan) {
            co_await loopIdleScan(p, l);
            l.nextScan = p.sim().now() + cfg_.idleScanInterval;
        }
    }
}

sim::Task
EventArch::loopAccept(sim::Process &p, Loop &l, sim::SimTime until)
{
    // Drain, but never past the idle tick (as OpenSER's main loop
    // re-checks its timers every iteration).
    net::TcpConn conn;
    while (p.sim().now() < until && listener_->tryAccept(conn)) {
        co_await p.cpu(host_.net().config().tcpAcceptCost,
                       ccKernAccept_);
        co_await installConn(p, l, std::move(conn), /*accepted=*/true);
        if (stop_)
            co_return;
    }
}

sim::Task
EventArch::installConn(sim::Process &p, Loop &l, net::TcpConn conn,
                       bool accepted)
{
    std::uint64_t id = conn.id();
    auto obj = std::make_unique<TcpConnObj>();
    obj->id = id;
    obj->peer = conn.remote();
    obj->ownerWorker = l.id;
    obj->lastUse = p.sim().now();
    // Shared descriptor table: every loop can write via this duplicate
    // under the per-connection write lock. No fd passing, ever.
    obj->supFd = conn.dup();

    co_await shared_.conns.lock().acquire(p);
    co_await p.cpu(cfg_.costs.connInsert, ccConnHash_);
    shared_.conns.insert(std::move(obj));
    shared_.conns.lock().release();
    if (accepted)
        ++shared_.counters.connsAccepted;

    l.owned[id] = std::move(conn);
    l.framers[id] = sip::StreamFramer{};
    l.ownedOrder.push_back(id);
    co_await p.cpu(cfg_.costs.pqOp, ccScan_);
    l.idlePq.push(p.sim().now() + cfg_.idleTimeout, id);
}

sim::Task
EventArch::loopReadConn(sim::Process &p, Loop &l, std::uint64_t conn_id)
{
    auto it = l.owned.find(conn_id);
    if (it == l.owned.end())
        co_return;
    // Pin against work stealing: coroutines below hold references
    // into this loop's owned maps across suspension points.
    l.busy.insert(conn_id);
    std::string bytes;
    co_await it->second.recv(p, bytes);
    WorkerLoop::traceRxConn(p, conn_id, bytes.size());
    if (bytes.empty()) {
        // EOF or reset: close and destroy directly — there is no
        // supervisor to return the connection to.
        co_await closeOwned(p, l, conn_id);
        co_await destroyConn(p, l, conn_id);
        l.busy.erase(conn_id);
        co_return;
    }
    net::Addr peer = it->second.remote();
    auto fit = l.framers.find(conn_id);
    if (fit == l.framers.end()) {
        l.busy.erase(conn_id);
        co_return;
    }
    fit->second.feed(std::move(bytes));
    Loop *lp = &l;
    for (;;) {
        // Re-find the framer: handling a message can close conns.
        fit = l.framers.find(conn_id);
        if (fit == l.framers.end()) {
            l.busy.erase(conn_id);
            co_return;
        }
        if (fit->second.poisoned()) {
            co_await closeOwned(p, l, conn_id);
            co_await destroyConn(p, l, conn_id);
            l.busy.erase(conn_id);
            co_return;
        }
        auto raw = fit->second.next();
        if (!raw)
            break;
        // Lambda merely calls a named coroutine (sim/task.hh rule).
        co_await l.wloop->dispatch(
            p, std::move(*raw), MsgSource{peer, conn_id},
            [this, lp](sim::Process &sp, SendAction action) {
                return loopSend(sp, *lp, std::move(action));
            });
    }
    if (TcpConnObj *obj = shared_.conns.byId(conn_id))
        obj->lastUse = p.sim().now(); // dirty single-word store
    l.busy.erase(conn_id);
}

sim::Task
EventArch::loopSend(sim::Process &p, Loop &l, SendAction action)
{
    // Fast path: this loop owns the connection — no locks at all.
    // Send on a cheap duplicate handle: a sibling may steal the map
    // entry while the send is suspended.
    if (action.dstConnId) {
        auto it = l.owned.find(action.dstConnId);
        if (it != l.owned.end()) {
            if (TcpConnObj *obj = shared_.conns.byId(action.dstConnId))
                obj->lastUse = p.sim().now(); // dirty write
            net::TcpConn fd = it->second.dup();
            co_await fd.send(p, std::move(action.wire));
            co_return;
        }
        // Cached duplicate of another loop's descriptor: still no
        // locks. Each loop writes its own handle, one atomic write
        // per SIP message; a destroyed connection makes the write a
        // silent drop, exactly as a real dup'd fd would.
        auto cit = l.peerFds.find(action.dstConnId);
        if (cit != l.peerFds.end()) {
            ++shared_.counters.fdCacheHits;
            co_await p.cpu(cfg_.costs.fdCacheHit, ccConnHash_);
            if (TcpConnObj *obj = shared_.conns.byId(action.dstConnId))
                obj->lastUse = p.sim().now(); // dirty write
            co_await cit->second.send(p, std::move(action.wire));
            co_return;
        }
    }

    // First touch of another loop's connection (or an address alias):
    // shared table lookup under the lock, dup the descriptor into the
    // per-loop cache, send on the private duplicate after release.
    co_await shared_.conns.lock().acquire(p);
    co_await p.cpu(cfg_.costs.connLookup, ccConnHash_);
    TcpConnObj *obj = action.dstConnId
        ? shared_.conns.byId(action.dstConnId)
        : nullptr;
    if (!obj)
        obj = shared_.conns.byAddr(action.dstAddr);
    if (!obj) {
        shared_.conns.lock().release();
        co_await loopConnect(p, l, std::move(action));
        co_return;
    }
    if (auto it = l.owned.find(obj->id); it != l.owned.end()) {
        // Alias resolved to a connection we own after all.
        obj->lastUse = p.sim().now();
        shared_.conns.lock().release();
        net::TcpConn fd = it->second.dup();
        co_await fd.send(p, std::move(action.wire));
        co_return;
    }
    obj->lastUse = p.sim().now();
    if (obj->dead || !obj->supFd.valid()) {
        ++shared_.counters.sendsToDeadConns;
        shared_.conns.lock().release();
        co_return;
    }
    std::uint64_t id = obj->id;
    net::TcpConn fd = obj->supFd.dup();
    shared_.conns.lock().release();
    // Unscaled fdInstall: the per-loop fd table holds only this
    // loop's share of the connections, not all of them (§5.2's
    // fdTableScale penalty models the workers' full-table case).
    co_await p.cpu(cfg_.costs.fdInstall, ccConnHash_);
    auto cit = l.peerFds.insert_or_assign(id, std::move(fd)).first;
    co_await cit->second.send(p, std::move(action.wire));
}

sim::Task
EventArch::loopConnect(sim::Process &p, Loop &l, SendAction action)
{
    ++shared_.counters.outboundConnects;
    net::TcpConn conn;
    try {
        if (cfg_.transport == Transport::Tls)
            co_await host_.tlsConnect(p, action.dstAddr, conn);
        else
            co_await host_.tcpConnect(p, action.dstAddr, conn);
    } catch (const net::NetError &) {
        ++shared_.counters.sendsToDeadConns;
        co_return;
    }
    std::uint64_t id = conn.id();
    net::Addr dst = action.dstAddr;
    // Send on the local handle before installing: once installed the
    // connection is stealable and the owned entry must not be touched.
    co_await conn.send(p, std::move(action.wire));
    co_await installConn(p, l, std::move(conn), /*accepted=*/false);
    co_await shared_.conns.lock().acquire(p);
    shared_.conns.setAlias(dst, id);
    shared_.conns.lock().release();
}

sim::Task
EventArch::closeOwned(sim::Process &p, Loop &l, std::uint64_t conn_id)
{
    auto it = l.owned.find(conn_id);
    if (it == l.owned.end())
        co_return;
    co_await it->second.close(p);
    l.owned.erase(it);
    l.framers.erase(conn_id);
    auto oit = std::find(l.ownedOrder.begin(), l.ownedOrder.end(),
                         conn_id);
    if (oit != l.ownedOrder.end())
        l.ownedOrder.erase(oit);
}

sim::Task
EventArch::destroyConn(sim::Process &p, Loop &l, std::uint64_t conn_id)
{
    co_await shared_.conns.lock().acquire(p);
    co_await p.cpu(cfg_.costs.connLookup, ccConnHash_);
    TcpConnObj *obj = shared_.conns.byId(conn_id);
    if (!obj || obj->ownerWorker != l.id) {
        // Already gone, or stolen since this destroy was queued.
        shared_.conns.lock().release();
        co_return;
    }
    obj->dead = true;
    co_await p.cpu(cfg_.costs.connErase
                       + host_.net().config().tcpCloseCost,
                   ccScan_);
    obj->supFd.closeQuiet();
    shared_.conns.erase(conn_id); // frees the object
    ++shared_.counters.connsDestroyed;
    shared_.conns.lock().release();
}

sim::Task
EventArch::loopIdleScan(sim::Process &p, Loop &l)
{
    sim::SimTime now = p.sim().now();
    ++shared_.counters.idleScans;
    std::size_t visited = 0;
    while (!l.idlePq.empty() && l.idlePq.top().expireAt <= now) {
        std::uint64_t id = l.idlePq.top().id;
        l.idlePq.pop();
        ++visited;
        co_await p.cpu(cfg_.costs.pqOp, ccScan_);
        if (l.owned.count(id)) {
            l.busy.insert(id);
            co_await shared_.conns.lock().acquire(p);
            co_await p.cpu(cfg_.costs.connLookup, ccConnHash_);
            TcpConnObj *obj = shared_.conns.byId(id);
            sim::SimTime expire =
                obj ? obj->lastUse + cfg_.idleTimeout : 0;
            shared_.conns.lock().release();
            if (obj && expire > now) {
                co_await p.cpu(cfg_.costs.pqOp, ccScan_);
                l.idlePq.push(expire, id);
                l.busy.erase(id);
                continue;
            }
            co_await closeOwned(p, l, id);
            l.busy.erase(id);
        }
        co_await destroyConn(p, l, id);
    }
    // Reap cached duplicates whose connection has since died (the
    // owning loop destroyed it, or the peer hung up); mirrors the
    // supervisor arch's stale-cache sweep.
    for (auto it = l.peerFds.begin(); it != l.peerFds.end();) {
        const auto &ep = it->second.endpoint();
        if (!it->second.valid() || !ep || ep->peerClosed()) {
            ++visited;
            ++shared_.counters.fdCacheInvalidations;
            co_await p.cpu(cfg_.costs.pqOp, ccScan_);
            it->second.closeQuiet();
            it = l.peerFds.erase(it);
        } else {
            ++it;
        }
    }
    shared_.counters.idleScanVisited += visited;
}

sim::Task
EventArch::loopSteal(sim::Process &p, Loop &l, bool *stole)
{
    *stole = false;
    // One sweep over the siblings' ready state: shared-memory reads,
    // modeled as a poll-scale scan.
    co_await p.cpu(cfg_.costs.pollOverhead, ccPoll_);
    const std::size_t nl = loops_.size();
    for (std::size_t off = 1; off < nl && !stop_; ++off) {
        Loop &v = *loops_[(static_cast<std::size_t>(l.id) + off) % nl];
        std::uint64_t cid = 0;
        for (std::uint64_t c : v.ownedOrder) {
            if (v.busy.count(c))
                continue;
            auto it = v.owned.find(c);
            if (it == v.owned.end() || !it->second.valid())
                continue;
            if (!it->second.readable().pollReady())
                continue;
            cid = c;
            break;
        }
        if (!cid)
            continue;
        // Migrate descriptor, framer state, and idle tracking in one
        // step — no suspension points, so the move is atomic under
        // the cooperative scheduler. The victim revalidates its ready
        // batch against `owned` and skips the moved entry; its stale
        // idle-queue entry is ignored via the ownerWorker check.
        auto vit = v.owned.find(cid);
        l.owned[cid] = std::move(vit->second);
        v.owned.erase(vit);
        auto fit = v.framers.find(cid);
        if (fit != v.framers.end()) {
            l.framers[cid] = std::move(fit->second);
            v.framers.erase(fit);
        } else {
            l.framers[cid] = sip::StreamFramer{};
        }
        auto oit = std::find(v.ownedOrder.begin(), v.ownedOrder.end(),
                             cid);
        if (oit != v.ownedOrder.end())
            v.ownedOrder.erase(oit);
        l.ownedOrder.push_back(cid);
        if (TcpConnObj *obj = shared_.conns.byId(cid))
            obj->ownerWorker = l.id; // dirty write
        ++shared_.counters.connsStolen;
        co_await p.cpu(cfg_.costs.connLookup + cfg_.costs.pqOp,
                       ccScan_);
        l.idlePq.push(p.sim().now() + cfg_.idleTimeout, cid);
        co_await loopReadConn(p, l, cid);
        *stole = true;
        co_return;
    }
}

// ---------------------------------------------------------------------------
// Datagram readiness loop
// ---------------------------------------------------------------------------

sim::Task
EventArch::loopMainDatagram(sim::Process &p, int id)
{
    // Not a coroutine: picks the loop body once at startup. batchMax
    // <= 1 keeps the legacy one-message readiness drain verbatim
    // (digest-pinned); above that, the drain becomes a true batch.
    if (host_.net().config().batchMax > 1)
        return loopMainDatagramBatched(p, id);
    return loopMainDatagramLegacy(p, id);
}

sim::Task
EventArch::loopMainDatagramLegacy(sim::Process &p, int id)
{
    Loop &l = *loops_[static_cast<std::size_t>(id)];
    std::vector<sim::Pollable *> items{sock_};
    std::vector<int> ready;
    Loop *lp = &l;
    while (!stop_) {
        co_await sim::pollAll(p, items, sim::kTimeNever, ready);
        if (stop_)
            break;
        co_await p.cpu(cfg_.costs.pollOverhead, ccPoll_);
        net::Datagram dgram;
        while (sock_->tryRecvFrom(dgram)) {
            // The blocking recvFrom path charges this on dequeue; the
            // readiness path must pay the same kernel copy cost.
            co_await sock_->chargeRecv(p, dgram.payload.size());
            WorkerLoop::traceRxDatagram(p, dgram.src,
                                        dgram.payload.size());
            shared_.overload.noteQueueDepth(sock_->queueDepth());
            co_await l.wloop->dispatch(
                p, std::move(dgram.payload), MsgSource{dgram.src, 0},
                [this, lp](sim::Process &sp, SendAction action) {
                    return loopSendDatagram(sp, *lp,
                                            std::move(action));
                });
            if (stop_)
                co_return;
        }
    }
}

sim::Task
EventArch::loopMainDatagramBatched(sim::Process &p, int id)
{
    Loop &l = *loops_[static_cast<std::size_t>(id)];
    std::vector<sim::Pollable *> items{sock_};
    std::vector<int> ready;
    const int bmax = host_.net().config().batchMax;
    std::vector<net::Datagram> batch;
    std::vector<net::OutDatagram> outbox;
    while (!stop_) {
        co_await sim::pollAll(p, items, sim::kTimeNever, ready);
        if (stop_)
            break;
        co_await p.cpu(cfg_.costs.pollOverhead, ccPoll_);
        std::size_t bytes = 0;
        // The per-loop readiness drain as a true batch: one batched
        // kernel charge per recvmmsg-sized gulp instead of one
        // syscall-scale charge per datagram.
        while (sock_->tryRecvBatch(batch, bmax, bytes)) {
            co_await sock_->chargeRecvBatch(p, batch.size(), bytes);
            std::size_t in_hand = batch.size();
            for (auto &dgram : batch) {
                WorkerLoop::traceRxDatagram(p, dgram.src,
                                            dgram.payload.size());
                --in_hand;
                shared_.overload.noteDrainedBatch(sock_->queueDepth(),
                                                  in_hand);
                co_await l.wloop->dispatchCollect(
                    p, std::move(dgram.payload),
                    MsgSource{dgram.src, 0}, outbox, batch.size());
                if (stop_)
                    co_return;
            }
            co_await sock_->sendBatch(p, outbox);
        }
    }
}

sim::Task
EventArch::loopSendDatagram(sim::Process &p, Loop &l, SendAction action)
{
    (void)l;
    return sock_->sendTo(p, action.dstAddr, std::move(action.wire));
}

// ---------------------------------------------------------------------------
// Timer process
// ---------------------------------------------------------------------------

sim::Task
EventArch::timerMain(sim::Process &p)
{
    while (!stop_) {
        co_await p.sleepFor(cfg_.timerTick);
        if (stop_)
            break;
        sim::SimTime now = p.sim().now();
        co_await WorkerLoop::reclaimTxns(p, shared_, cfg_, now);
        if (!tcpMode())
            co_await timerLoop_->datagramTimerTick(p, *sock_, now);
    }
}

} // namespace siprox::core

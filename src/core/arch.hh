/**
 * @file
 * The pluggable server-architecture layer.
 *
 * The paper's central claim is that OpenSER's TCP deficit is an
 * *architecture* problem (blocking fd-passing IPC, O(N) idle scans),
 * not a transport problem. Making the architecture a first-class,
 * transport-agnostic interface lets the arch x transport cross-product
 * be an experiment axis: the same workload can run the §3.1
 * supervisor/worker design, the §3.2 symmetric workers, or the
 * event-driven redesign over any transport that supports it.
 *
 * Implementations: TcpArch (SupervisorWorker), UdpArch
 * (SymmetricWorker), EventArch (EventDriven). Construct through
 * makeServerArch(), which validates the arch x transport pairing.
 */

#ifndef SIPROX_CORE_ARCH_HH
#define SIPROX_CORE_ARCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/shared.hh"
#include "net/network.hh"
#include "sim/machine.hh"

namespace siprox::core {

/**
 * One architecture-specific telemetry gauge: a stable metric name (no
 * machine/hop prefix — the sampler adds those) and its current value.
 * Kept a plain pair-of-POD so core need not depend on stats.
 */
struct ArchGauge
{
    const char *name;
    double value;
};

/**
 * One server architecture bound to a host. start() binds sockets and
 * spawns the architecture's processes; the occupancy hooks are the
 * uniform sampling surface the overload controller, the workload
 * runner, and collectMetrics poll.
 */
class ServerArch
{
  public:
    virtual ~ServerArch() = default;

    ServerArch(const ServerArch &) = delete;
    ServerArch &operator=(const ServerArch &) = delete;

    /** Bind sockets and spawn this architecture's processes. */
    virtual void start() = 0;

    /** Ask every loop to exit at its next wakeup. */
    virtual void requestStop() = 0;

    /** Resolved architecture kind (never Auto). */
    virtual ArchKind kind() const = 0;

    /** Processes running receive loops (workers or event loops). */
    virtual int loopCount() const = 0;

    // --- occupancy hooks (sampled, not locked) -------------------------
    /** Depth of the internal work/request queue: the TCP
     *  worker->supervisor channel; for architectures without IPC the
     *  socket receive queue. */
    virtual std::size_t requestQueueDepth() const = 0;

    /** Datagram receive-queue depth, or the TCP kernel accept
     *  backlog. */
    virtual std::size_t recvQueueDepth() const = 0;

    /** Messages the proxy's socket dropped to receive-queue
     *  overflow. */
    virtual std::uint64_t recvQueueDrops() const = 0;

    /** TCP connects refused because the accept queue was full. */
    virtual std::uint64_t acceptRefused() const = 0;

    /**
     * Append architecture-specific telemetry gauges (windowed
     * sampler). Default: none. Implementations expose what the common
     * hooks above cannot: e.g. open connections, idle-scan length,
     * supervisor channel occupancy.
     */
    virtual void
    appendTelemetryGauges(std::vector<ArchGauge> &out) const
    {
        (void)out;
    }

  protected:
    ServerArch() = default;
};

/**
 * Construct the architecture selected by @p cfg (resolving
 * ArchKind::Auto by transport).
 *
 * @throws std::invalid_argument when the arch x transport pairing is
 *         unsupported (see archSupportError()).
 */
std::unique_ptr<ServerArch> makeServerArch(sim::Machine &machine,
                                           net::Host &host,
                                           SharedState &shared,
                                           const ProxyConfig &cfg);

} // namespace siprox::core

#endif // SIPROX_CORE_ARCH_HH

#include "core/arch.hh"

#include <stdexcept>
#include <string>

#include "core/event_arch.hh"
#include "core/tcp_arch.hh"
#include "core/udp_arch.hh"

namespace siprox::core {

const char *
archKindName(ArchKind k)
{
    switch (k) {
      case ArchKind::Auto:
        return "auto";
      case ArchKind::SupervisorWorker:
        return "supervisor";
      case ArchKind::SymmetricWorker:
        return "symmetric";
      case ArchKind::EventDriven:
        return "event";
    }
    return "?";
}

ArchKind
resolveArchKind(ArchKind k, Transport t)
{
    if (k != ArchKind::Auto)
        return k;
    // OpenSER's hard-wired map: the transport implies the architecture.
    // Byte-stream transports (TCP, TLS) get the supervisor/worker
    // design; message-oriented ones the symmetric workers.
    return isStreamTransport(t) ? ArchKind::SupervisorWorker
                                : ArchKind::SymmetricWorker;
}

const char *
archSupportError(ArchKind k, Transport t)
{
    switch (resolveArchKind(k, t)) {
      case ArchKind::SupervisorWorker:
        if (!isStreamTransport(t))
            return "the supervisor/worker architecture is "
                   "connection-oriented (accept, assign, fd-passing); "
                   "it only serves the byte-stream transports TCP and "
                   "TLS";
        return nullptr;
      case ArchKind::SymmetricWorker:
        if (isStreamTransport(t))
            return "symmetric workers share one message-based socket; "
                   "TCP/TLS byte streams need per-connection ownership "
                   "(use supervisor or event)";
        return nullptr;
      case ArchKind::EventDriven:
        return nullptr; // readiness loops serve every transport
      case ArchKind::Auto:
        break; // unreachable: resolveArchKind never returns Auto
    }
    return nullptr;
}

std::unique_ptr<ServerArch>
makeServerArch(sim::Machine &machine, net::Host &host,
               SharedState &shared, const ProxyConfig &cfg)
{
    if (const char *err = archSupportError(cfg.arch, cfg.transport)) {
        throw std::invalid_argument(
            std::string(archKindName(cfg.arch)) + " over "
            + transportName(cfg.transport) + ": " + err);
    }
    switch (resolveArchKind(cfg.arch, cfg.transport)) {
      case ArchKind::SupervisorWorker:
        return std::make_unique<TcpArch>(machine, host, shared, cfg);
      case ArchKind::SymmetricWorker:
        return std::make_unique<UdpArch>(machine, host, shared, cfg);
      case ArchKind::EventDriven:
        return std::make_unique<EventArch>(machine, host, shared, cfg);
      case ArchKind::Auto:
        break; // unreachable
    }
    throw std::logic_error("unresolved architecture kind");
}

} // namespace siprox::core

#include "core/dispatcher.hh"

#include "sip/parser.hh"
#include "sip/uri.hh"

namespace siprox::core {

namespace {

/** Extract the URI from a name-addr header value like "<sip:x>;tag=y". */
std::optional<sip::SipUri>
uriFromNameAddr(std::string_view value)
{
    auto lt = value.find('<');
    if (lt != std::string_view::npos) {
        auto gt = value.find('>', lt);
        if (gt == std::string_view::npos)
            return std::nullopt;
        return sip::SipUri::parse(value.substr(lt + 1, gt - lt - 1));
    }
    auto semi = value.find(';');
    return sip::SipUri::parse(value.substr(0, semi));
}

/** The address a Via header says to reply to. */
std::optional<net::Addr>
addrFromVia(const sip::Via &via)
{
    return sip::addrFromHost(via.host, via.effectivePort());
}

} // namespace

const char *
dispatchPolicyName(DispatchPolicy p)
{
    switch (p) {
      case DispatchPolicy::RoundRobin:
        return "rr";
      case DispatchPolicy::HashCallId:
        return "hash-callid";
      case DispatchPolicy::HashAor:
        return "hash-aor";
    }
    return "?";
}

const char *
dispatchSupportError(DispatchPolicy p, Transport t)
{
    (void)p; // every policy works over every dispatchable transport
    switch (t) {
      case Transport::Udp:
      case Transport::Tcp:
        return nullptr;
      case Transport::Tls:
        return "the dispatcher does not terminate TLS: fronting a "
               "cluster with TLS means re-encrypting per trunk, which "
               "this model does not simulate — use udp or tcp";
      case Transport::Sctp:
        return "SCTP association state cannot be relayed through the "
               "dispatcher's datagram fast path — use udp or tcp";
      case Transport::Sst:
        return "SST channels are end-to-end; a front-end relay would "
               "break their stream multiplexing — use udp or tcp";
    }
    return "unknown transport";
}

Dispatcher::Dispatcher(sim::Machine &machine, net::Host &host,
                       DispatcherConfig cfg)
    : machine_(machine), host_(host), cfg_(std::move(cfg)),
      ccPeek_(sim::CostCenters::id("disp:peek")),
      ccRoute_(sim::CostCenters::id("disp:route"))
{
    stats_.toInstance.assign(cfg_.instances.size(), 0);
    ring_.build(static_cast<int>(cfg_.instances.size()), cfg_.vnodes);
    for (std::size_t i = 0; i < cfg_.instances.size(); ++i)
        instanceByAddr_[cfg_.instances[i]] = static_cast<int>(i);
}

Dispatcher::~Dispatcher() = default;

void
Dispatcher::start()
{
    if (cfg_.instances.empty())
        return;
    if (isStreamTransport(cfg_.transport)) {
        listener_ = &host_.tcpListen(cfg_.port);
        trunks_.resize(cfg_.instances.size());
        for (std::size_t i = 0; i < cfg_.instances.size(); ++i) {
            machine_.spawn("trunk" + std::to_string(i), 0,
                           [this, i](sim::Process &p) {
                               return trunkMain(p,
                                                static_cast<int>(i));
                           });
        }
        machine_.spawn("daccept", 0, [this](sim::Process &p) {
            return acceptMain(p);
        });
    } else {
        sock_ = &host_.udpBind(cfg_.port);
        for (int i = 0; i < cfg_.workers; ++i) {
            machine_.spawn("dworker" + std::to_string(i), 0,
                           [this](sim::Process &p) {
                               return udpWorkerMain(p);
                           });
        }
    }
}

void
Dispatcher::requestStop()
{
    stop_ = true;
}

int
Dispatcher::pickInstance(const sip::SipMessage &msg)
{
    const auto n = cfg_.instances.size();
    if (n == 0)
        return -1;
    // REGISTERs are pinned to the AOR's owner under every policy, as
    // real dispatchers do: the binding must land in the shard that
    // owns it, or every later lookup would miss.
    if (msg.method() == sip::Method::Register) {
        auto to_uri = uriFromNameAddr(msg.to());
        if (!to_uri)
            return -1;
        return ring_.owner(to_uri->user);
    }
    switch (cfg_.policy) {
      case DispatchPolicy::RoundRobin:
        return static_cast<int>(rr_++ % n);
      case DispatchPolicy::HashCallId:
        return ring_.owner(msg.callId());
      case DispatchPolicy::HashAor:
        return ring_.owner(msg.requestUri().user);
    }
    return -1;
}

sim::Task
Dispatcher::peek(sim::Process &p, const std::string &wire,
                 sip::ParseResult *out)
{
    ++stats_.messagesIn;
    co_await p.cpu(cfg_.costs.dispatchPeek, ccPeek_);
    *out = sip::parseMessage(wire);
}

// --- UDP ----------------------------------------------------------------

sim::Task
Dispatcher::udpWorkerMain(sim::Process &p)
{
    while (!stop_) {
        net::Datagram dgram;
        co_await sock_->recvFrom(p, dgram);
        if (stop_)
            break;
        co_await routeDatagram(p, std::move(dgram));
    }
}

sim::Task
Dispatcher::routeDatagram(sim::Process &p, net::Datagram dgram)
{
    sip::ParseResult pr;
    co_await peek(p, dgram.payload, &pr);
    if (!pr.ok) {
        ++stats_.peekFailures;
        co_return;
    }
    co_await p.cpu(cfg_.costs.dispatchRoute, ccRoute_);
    if (pr.message.isRequest()) {
        int i = pickInstance(pr.message);
        if (i < 0) {
            ++stats_.dropsNoRoute;
            co_return;
        }
        if (pr.message.method() == sip::Method::Register)
            ++stats_.registersRouted;
        ++stats_.requestsRouted;
        ++stats_.toInstance[static_cast<std::size_t>(i)];
        co_await sock_->sendTo(p,
                               cfg_.instances[static_cast<std::size_t>(
                                   i)],
                               std::move(dgram.payload));
    } else {
        // Response from an instance: the top Via names the phone.
        const auto &via = pr.message.topVia();
        auto phone = via ? addrFromVia(*via) : std::nullopt;
        if (!phone) {
            ++stats_.dropsNoRoute;
            co_return;
        }
        ++stats_.responsesRouted;
        co_await sock_->sendTo(p, *phone, std::move(dgram.payload));
    }
}

// --- TCP ----------------------------------------------------------------

sim::Task
Dispatcher::sendToInstance(sim::Process &p, int instance,
                           std::string wire)
{
    auto idx = static_cast<std::size_t>(instance);
    // The trunk dials at t=0; the first client frames can beat the
    // handshake by a hair, so wait instead of dropping.
    while (!stop_
           && (idx >= trunks_.size() || !trunks_[idx]
               || !trunks_[idx]->valid()))
        co_await p.sleepFor(sim::msecs(1));
    if (stop_)
        co_return;
    co_await trunks_[idx]->send(p, std::move(wire));
}

sim::Task
Dispatcher::sendToClientAddr(sim::Process &p, net::Addr phone,
                             std::string wire)
{
    auto it = clientByAddr_.find(phone);
    if (it == clientByAddr_.end() || !it->second->valid()) {
        ++stats_.dropsNoRoute;
        co_return;
    }
    co_await it->second->send(p, std::move(wire));
}

sim::Task
Dispatcher::trunkMain(sim::Process &p, int instance)
{
    auto idx = static_cast<std::size_t>(instance);
    auto conn = std::make_shared<net::TcpConn>();
    co_await host_.tcpConnect(p, cfg_.instances[idx], *conn);
    trunks_[idx] = conn;
    sip::StreamFramer framer;
    std::string buf;
    while (!stop_) {
        buf.clear();
        co_await conn->recv(p, buf);
        if (buf.empty())
            break; // EOF or reset
        framer.feed(std::move(buf));
        while (auto m = framer.next()) {
            sip::ParseResult pr;
            co_await peek(p, *m, &pr);
            if (!pr.ok) {
                ++stats_.peekFailures;
                continue;
            }
            co_await p.cpu(cfg_.costs.dispatchRoute, ccRoute_);
            std::optional<net::Addr> phone;
            if (pr.message.isRequest()) {
                // Owner instance forwarding toward the callee: the
                // request-URI is the registered contact.
                phone = sip::addrFromUri(pr.message.requestUri());
            } else if (const auto &via = pr.message.topVia()) {
                phone = addrFromVia(*via);
            }
            if (!phone) {
                ++stats_.dropsNoRoute;
                continue;
            }
            if (pr.message.isRequest())
                ++stats_.requestsRouted;
            else
                ++stats_.responsesRouted;
            co_await sendToClientAddr(p, *phone, std::move(*m));
        }
        if (framer.poisoned())
            break;
    }
}

sim::Task
Dispatcher::acceptMain(sim::Process &p)
{
    while (!stop_) {
        auto conn = std::make_shared<net::TcpConn>();
        co_await listener_->accept(p, *conn);
        if (stop_)
            break;
        if (!conn->valid())
            continue;
        ++stats_.clientConnsAccepted;
        machine_.spawn("dconn" + std::to_string(conn->id()), 0,
                       [this, conn](sim::Process &sp) {
                           return clientConnMain(sp, conn);
                       });
    }
}

sim::Task
Dispatcher::clientConnMain(sim::Process &p,
                           std::shared_ptr<net::TcpConn> conn)
{
    sip::StreamFramer framer;
    std::string buf;
    while (!stop_) {
        buf.clear();
        co_await conn->recv(p, buf);
        if (buf.empty())
            break; // phone closed
        framer.feed(std::move(buf));
        while (auto m = framer.next()) {
            sip::ParseResult pr;
            co_await peek(p, *m, &pr);
            if (!pr.ok) {
                ++stats_.peekFailures;
                continue;
            }
            co_await p.cpu(cfg_.costs.dispatchRoute, ccRoute_);
            if (pr.message.isRequest()) {
                // Learn how to reach this phone for trunk traffic: the
                // Via sent-by (responses) and, on REGISTER, the Contact
                // (requests forwarded toward the callee).
                if (const auto &via = pr.message.topVia()) {
                    if (auto a = addrFromVia(*via))
                        clientByAddr_[*a] = conn;
                }
                if (pr.message.method() == sip::Method::Register) {
                    if (auto c = pr.message.contactUri()) {
                        if (auto a = sip::addrFromUri(*c))
                            clientByAddr_[*a] = conn;
                    }
                }
                int i = pickInstance(pr.message);
                if (i < 0) {
                    ++stats_.dropsNoRoute;
                    continue;
                }
                if (pr.message.method() == sip::Method::Register)
                    ++stats_.registersRouted;
                ++stats_.requestsRouted;
                ++stats_.toInstance[static_cast<std::size_t>(i)];
                co_await sendToInstance(p, i, std::move(*m));
            } else {
                // Response from a phone: the top Via names the
                // instance whose trunk it rides back on.
                const auto &via = pr.message.topVia();
                auto a = via ? addrFromVia(*via) : std::nullopt;
                auto it = a ? instanceByAddr_.find(*a)
                            : instanceByAddr_.end();
                if (!a || it == instanceByAddr_.end()) {
                    ++stats_.dropsNoRoute;
                    continue;
                }
                ++stats_.responsesRouted;
                co_await sendToInstance(p, it->second, std::move(*m));
            }
        }
        if (framer.poisoned())
            break;
    }
}

} // namespace siprox::core

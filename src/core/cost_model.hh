/**
 * @file
 * User-level CPU cost model for the OpenSER-like proxy. Each constant
 * is the simulated CPU charge of one operation, billed to a cost center
 * named after the corresponding OpenSER function group so the simulated
 * profiler reproduces the paper's §5 OProfile observations. Kernel-side
 * costs (syscalls) live in net::NetConfig.
 *
 * Calibration: the constants were fit once so that the UDP baseline at
 * 100 clients lands near the paper's ~33.7k ops/s on a 4-core server;
 * every other number in EXPERIMENTS.md is emergent from the
 * architecture, not individually fitted.
 */

#ifndef SIPROX_CORE_COST_MODEL_HH
#define SIPROX_CORE_COST_MODEL_HH

#include "sim/time.hh"

namespace siprox::core {

using sim::SimTime;

/** Per-operation user-level CPU charges. */
struct CostModel
{
    // --- SIP processing (all transports) --------------------------------
    /** Parse one SIP message (ser:parse_msg). */
    SimTime parse = sim::usecs(8);
    /** Routing decision incl. URI handling (ser:route). */
    SimTime route = sim::usecs(3.5);
    /** Serialize / adjust headers for forwarding (ser:build). */
    SimTime serialize = sim::usecs(3);

    // --- stateful transaction engine (ser:tm) -----------------------------
    SimTime txnCreate = sim::usecs(4);
    SimTime txnLookup = sim::usecs(2.3);
    SimTime txnUpdate = sim::usecs(1.7);

    // --- registrar / location service (ser:usrloc) -----------------------
    SimTime registrarLookup = sim::usecs(1.5);
    SimTime registrarUpdate = sim::usecs(2);

    // --- digest authentication (ser:auth), when enabled -------------------
    /** MD5 digest verification of an Authorization header. */
    SimTime authCheck = sim::usecs(6);
    /** Credential fetch from the user database (the "aggressive
     *  database lookups" of Nahum et al.). */
    SimTime authDbLookup = sim::usecs(18);
    /** Building a 401 challenge with a fresh nonce. */
    SimTime authChallenge = sim::usecs(4);

    // --- retransmission timers (ser:timer) --------------------------------
    SimTime timerArm = sim::usecs(1.2);
    SimTime timerCancel = sim::usecs(1);
    /** Per-entry cost of scanning the global timer list. */
    SimTime timerScanPerEntry = sim::usecs(0.4);

    // --- TCP architecture (ser:tcp_main / ser:tcp_read) -------------------
    /** Worker-side marshalling of an fd request
     *  (ser:tcp_send_fd_request — the paper's 12% function). */
    SimTime ipcRequest = sim::usecs(5);
    /** Supervisor-side handling of one fd request. */
    SimTime ipcHandle = sim::usecs(7);
    /** Kernel socketpair transfer, per IPC message. */
    SimTime ipcSend = sim::usecs(6);
    SimTime ipcRecv = sim::usecs(5);
    /** Installing a received (passed) descriptor. */
    SimTime fdInstall = sim::usecs(3);
    /** Connection hash-table lookup / insert / erase (shared memory). */
    SimTime connLookup = sim::usecs(1.5);
    SimTime connInsert = sim::usecs(2.5);
    SimTime connErase = sim::usecs(2);
    /** Per-entry cost of the linear idle-connection scan
     *  (ser:tcpconn_timeout — the §5.2 culprit). */
    SimTime idleScanPerConn = sim::usecs(0.8);
    /** One shared/local priority-queue operation (§5.3 fix). */
    SimTime pqOp = sim::usecs(0.9);
    /** Hitting the per-worker fd cache (§5.2 fix). */
    SimTime fdCacheHit = sim::usecs(3);

    // --- cluster dispatcher / sharded location service --------------------
    /** Dispatcher L7 peek: parse enough of a message to pick an
     *  instance (cheaper than full proxy parsing — no header
     *  rewriting, no transaction work). */
    SimTime dispatchPeek = sim::usecs(1.5);
    /** Dispatcher routing decision (hash/round-robin + table walk). */
    SimTime dispatchRoute = sim::usecs(0.8);
    /** Lookup in the async-replicated (non-owned) binding store. */
    SimTime replicaLookup = sim::usecs(1.2);
    /** Install one replicated binding pushed by a peer. */
    SimTime replicaInstall = sim::usecs(1.8);

    // --- misc -------------------------------------------------------------
    /** Event-loop bookkeeping per poll wakeup. */
    SimTime pollOverhead = sim::usecs(1.0);

    /**
     * Cache/TLB pressure substitute: SIP-processing costs are scaled
     * by (1 + resident_state_entries / statePressureScale), where
     * resident state is the registrar, connection table, and timer
     * list. This stands in for the real machine's larger working set
     * at higher client counts (DESIGN.md substitutions) and produces
     * the paper's mild throughput decline from 100 to 1000 clients.
     */
    double statePressureScale = 5500.0;

    /**
     * The supervisor holds a descriptor for every open connection, so
     * its per-request work (dup + SCM_RIGHTS install scan the fd
     * table) grows with the table: ipcHandle and fdInstall are scaled
     * by (1 + open_connections / fdTableScale).
     */
    double fdTableScale = 4000.0;
};

} // namespace siprox::core

#endif // SIPROX_CORE_COST_MODEL_HH

/**
 * @file
 * OpenSER's TCP architecture (paper §3.1, Figure 1): a single
 * supervisor process that accepts connections, assigns them to worker
 * processes, answers blocking file-descriptor requests over IPC, and
 * closes idle connections; plus N workers that own connections, frame
 * and process SIP messages, and request descriptors for every
 * connection they must write to.
 *
 * The knobs studied by the paper are all here:
 *  - ProxyConfig::fdCache        — §5.2 per-worker descriptor cache
 *  - ProxyConfig::idleStrategy   — §5.2 linear scan vs §5.3 priority
 *                                  queues
 *  - ProxyConfig::supervisorNice — §4.3 priority elevation
 *  - ProxyConfig::eventDrivenIpc — §6 non-blocking dispatch (deadlock
 *                                  fix)
 *  - ProxyConfig::concurrency    — §6 multithreaded variant: workers
 *                                  share one descriptor table, so no
 *                                  fd-passing IPC exists at all
 */

#ifndef SIPROX_CORE_TCP_ARCH_HH
#define SIPROX_CORE_TCP_ARCH_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/arch.hh"
#include "core/config.hh"
#include "core/engine.hh"
#include "core/ipc_msg.hh"
#include "core/shared.hh"
#include "core/worker_loop.hh"
#include "net/network.hh"
#include "net/tcp.hh"
#include "sim/channel.hh"
#include "sim/machine.hh"

namespace siprox::core {

// These message types travel by value into coroutines and carry
// move-only descriptors; SIPROX_IPC_MSG_LIFECYCLE keeps them
// non-aggregate (see ipc_msg.hh for the GCC 12 story).

/** Supervisor -> worker: a newly accepted connection. */
struct NewConnMsg
{
    std::uint64_t connId = 0;
    /** The worker's descriptor (empty in thread mode: fd is shared). */
    net::TcpConn fd;

    SIPROX_IPC_MSG_LIFECYCLE(NewConnMsg);

    NewConnMsg(std::uint64_t conn_id, net::TcpConn conn)
        : connId(conn_id), fd(std::move(conn))
    {
    }
};

/** Supervisor -> worker: answer to a descriptor request. */
struct FdRespMsg
{
    std::uint64_t connId = 0;
    bool ok = false;
    net::TcpConn fd;

    SIPROX_IPC_MSG_LIFECYCLE(FdRespMsg);
};

/** Worker -> supervisor requests. */
struct ReqMsg
{
    enum class Kind
    {
        FdRequest,
        ConnReturned,
        RegisterConn, ///< worker-opened outbound connection
    };

    Kind kind = Kind::FdRequest;
    int worker = -1;
    std::uint64_t connId = 0;
    net::TcpConn fd; ///< supervisor's copy, for RegisterConn

    SIPROX_IPC_MSG_LIFECYCLE(ReqMsg);

    ReqMsg(Kind k, int w, std::uint64_t conn_id, net::TcpConn conn)
        : kind(k), worker(w), connId(conn_id), fd(std::move(conn))
    {
    }
};

/**
 * The supervisor/worker TCP proxy.
 */
class TcpArch final : public ServerArch
{
  public:
    TcpArch(sim::Machine &machine, net::Host &host, SharedState &shared,
            const ProxyConfig &cfg);
    ~TcpArch() override;

    void start() override;
    void requestStop() override { stop_ = true; }

    ArchKind kind() const override { return ArchKind::SupervisorWorker; }
    int loopCount() const override { return cfg_.workers; }

    /** Depth of the worker->supervisor request queue (diagnostics). */
    std::size_t requestQueueDepth() const override;

    /** Depth of the listener's kernel accept queue (sampling). */
    std::size_t acceptBacklogDepth() const;

    std::size_t
    recvQueueDepth() const override
    {
        return acceptBacklogDepth();
    }

    /** No receive-queue overflow exists here: kernel flow control
     *  pushes back on senders instead of dropping. */
    std::uint64_t recvQueueDrops() const override { return 0; }

    /** SYNs the kernel refused because the accept queue was full. */
    std::uint64_t acceptRefused() const override;

    /** Gauges: owned connections, fd-cache entries, pending
     *  dispatches (event-driven IPC backlog). */
    void appendTelemetryGauges(std::vector<ArchGauge> &out)
        const override;

  private:
    struct Worker
    {
        int id = -1;
        /** Connections this worker reads (process mode holds the fd;
         *  thread mode holds only the id set). */
        std::unordered_map<std::uint64_t, net::TcpConn> owned;
        std::vector<std::uint64_t> ownedOrder;
        std::unordered_map<std::uint64_t, sip::StreamFramer> framers;
        /** §5.2 fd cache: descriptors for other workers' connections. */
        std::unordered_map<std::uint64_t, net::TcpConn> fdCache;
        /** §5.3: local priority queue over owned connections. */
        IdlePq localPq;
        std::unique_ptr<sim::Channel<NewConnMsg>> dispatch;
        std::unique_ptr<sim::Channel<FdRespMsg>> resp;
        std::unique_ptr<Engine> engine;
        std::unique_ptr<WorkerLoop> loop;
        sim::SimTime nextScan = 0;
        int rrCursor = 0;
    };

    // --- worker side ------------------------------------------------------
    sim::Task workerMain(sim::Process &p, int id);
    sim::Task workerInstallConn(sim::Process &p, Worker &w,
                                NewConnMsg msg);
    sim::Task workerReadConn(sim::Process &p, Worker &w,
                             std::uint64_t conn_id);
    sim::Task workerSend(sim::Process &p, Worker &w, SendAction action);
    sim::Task workerSendThreadMode(sim::Process &p, Worker &w,
                                   SendAction action);
    sim::Task workerOutboundConnect(sim::Process &p, Worker &w,
                                    SendAction action);
    sim::Task workerCloseConn(sim::Process &p, Worker &w,
                              std::uint64_t conn_id, bool dead);
    sim::Task workerIdleScan(sim::Process &p, Worker &w);

    // --- supervisor side ---------------------------------------------------
    sim::Task supervisorMain(sim::Process &p);
    sim::Task supervisorAccept(sim::Process &p, net::TcpConn conn);
    sim::Task supervisorHandleRequest(sim::Process &p, ReqMsg req);
    sim::Task supervisorDispatch(sim::Process &p, int worker,
                                 NewConnMsg msg);
    sim::Task supervisorIdleScan(sim::Process &p);
    sim::Task supervisorFlushPending(sim::Process &p, int worker);

    /** Destroy a connection object (lock must be held). */
    void destroyLocked(TcpConnObj &obj);

    sim::Task timerMain(sim::Process &p);

    bool threadMode() const
    {
        return cfg_.concurrency == ConcurrencyModel::Thread;
    }

    sim::Machine &machine_;
    net::Host &host_;
    SharedState &shared_;
    const ProxyConfig &cfg_;
    net::TcpListener *listener_ = nullptr;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::unique_ptr<sim::Channel<ReqMsg>> reqChan_;
    /** Event-driven IPC: dispatches waiting for channel space. */
    std::vector<std::deque<NewConnMsg>> pendingDispatch_;
    int rrNext_ = 0;
    bool stop_ = false;

    sim::CostCenterId ccFdReq_;
    sim::CostCenterId ccIpc_;
    sim::CostCenterId ccTcpMain_;
    sim::CostCenterId ccScan_;
    sim::CostCenterId ccConnHash_;
    sim::CostCenterId ccPoll_;
    sim::CostCenterId ccKernAccept_;
    sim::CostCenterId ccKernClose_;
};

} // namespace siprox::core

#endif // SIPROX_CORE_TCP_ARCH_HH

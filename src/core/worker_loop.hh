/**
 * @file
 * Receive-loop scaffolding shared by every server architecture.
 *
 * All three architectures (supervisor/worker TCP, symmetric datagram
 * workers, event-driven loops) wrap the same sequence around each
 * received message: trace logging, feeding the overload controller's
 * queue-depth signal, opening a causal span, running the Engine, and
 * transmitting the SendActions it emits. Only the transmit step is
 * architecture-specific, so dispatch() takes it as a callable and the
 * rest lives here once.
 *
 * The timer-process bodies (terminated-transaction reclamation and the
 * datagram retransmission walk) are equally architecture-independent
 * and live here too.
 *
 * One WorkerLoop per *process*: dispatch() reuses a member SendAction
 * vector (the parse+forward hot path is allocation-budgeted), so an
 * instance must never be shared between processes that can interleave
 * at co_await points.
 */

#ifndef SIPROX_CORE_WORKER_LOOP_HH
#define SIPROX_CORE_WORKER_LOOP_HH

#include <string>
#include <utility>
#include <vector>

#include "core/config.hh"
#include "core/engine.hh"
#include "core/shared.hh"
#include "net/datagram.hh"
#include "sim/process.hh"
#include "sim/task.hh"
#include "sim/trace.hh"

namespace siprox::core {

class WorkerLoop
{
  public:
    WorkerLoop(SharedState &shared, const ProxyConfig &cfg,
               Engine &engine)
        : shared_(shared), cfg_(cfg), engine_(engine)
    {
    }

    WorkerLoop(const WorkerLoop &) = delete;
    WorkerLoop &operator=(const WorkerLoop &) = delete;

    Engine &engine() { return engine_; }

    /** Trace one received stream chunk, labeled by connection. */
    static void
    traceRxConn(sim::Process &p, std::uint64_t conn_id,
                std::size_t bytes)
    {
        if (sim::trace::enabled()) {
            sim::trace::log(p.sim().now(), "proxy-rx",
                            "conn " + std::to_string(conn_id) + " "
                                + std::to_string(bytes) + "B");
        }
    }

    /** Trace one received datagram, labeled by source address. */
    static void
    traceRxDatagram(sim::Process &p, const net::Addr &src,
                    std::size_t bytes)
    {
        if (sim::trace::enabled()) {
            sim::trace::log(p.sim().now(), "proxy-rx",
                            src.toString() + " "
                                + std::to_string(bytes) + "B");
        }
    }

    /** Feed the overload controller's queue-occupancy signal. */
    void
    noteQueueDepth(std::size_t depth)
    {
        shared_.overload.noteQueueDepth(depth);
    }

    /** Batched-dequeue variant: messages still queued behind plus
     *  messages drained but not yet processed (see
     *  OverloadController::noteDrainedBatch). */
    void
    noteDrainedBatch(std::size_t behind, std::size_t in_hand)
    {
        shared_.overload.noteDrainedBatch(behind, in_hand);
    }

    /**
     * Process one raw message: open a causal span covering the engine
     * work and every transmission it triggers, run the Engine, then
     * hand each SendAction to @p send (a callable returning a
     * sim::Task, e.g. a lambda that merely calls a named coroutine —
     * see the lifetime rule in sim/task.hh).
     *
     * @param batch_depth When the message was drained as part of a
     *        batched dequeue, the batch's size; the span is attributed
     *        `batched` in the trace export. 0 (or 1) for the legacy
     *        one-message path.
     */
    template <typename SendFn>
    sim::Task
    dispatch(sim::Process &p, std::string raw, MsgSource src,
             SendFn send, std::size_t batch_depth = 0)
    {
        sim::SpanScope span(p);
        if (batch_depth > 1) {
            if (auto *ctx = span.ctx())
                ctx->batchDepth =
                    static_cast<std::uint32_t>(batch_depth);
        }
        actions_.clear();
        co_await engine_.handleMessage(p, std::move(raw), src,
                                       actions_);
        for (auto &action : actions_)
            co_await send(p, std::move(action));
    }

    /**
     * Batched-path variant of dispatch(): instead of transmitting each
     * SendAction through a per-action coroutine, push them onto
     * @p outbox for one deferred sendBatch() flush. Saves a coroutine
     * frame and an awaiter round trip per action on the hot path.
     */
    sim::Task
    dispatchCollect(sim::Process &p, std::string raw, MsgSource src,
                    std::vector<net::OutDatagram> &outbox,
                    std::size_t batch_depth)
    {
        sim::SpanScope span(p);
        if (batch_depth > 1) {
            if (auto *ctx = span.ctx())
                ctx->batchDepth =
                    static_cast<std::uint32_t>(batch_depth);
        }
        actions_.clear();
        co_await engine_.handleMessage(p, std::move(raw), src,
                                       actions_);
        for (auto &action : actions_)
            outbox.push_back(net::OutDatagram{
                action.dstAddr, std::move(action.wire)});
    }

    /**
     * Reclaim terminated transaction records (every architecture's
     * timer process runs this each tick). Static: the TCP timer has no
     * engine of its own and this touches only the shared tables.
     *
     * @param now The cleanup horizon; pass sim::kTimeNever to sample
     *        the clock *after* the table lock is acquired (the TCP
     *        timer's historical behaviour — lock waits advance time).
     */
    static sim::Task reclaimTxns(sim::Process &p, SharedState &shared,
                                 const ProxyConfig &cfg,
                                 sim::SimTime now = sim::kTimeNever);

    /**
     * One datagram timer tick past the transaction reclaim: walk the
     * global retransmission list (§3.2), resend due messages on
     * @p sock, and answer Timer B/F expiries with 408 via the engine.
     *
     * @param now The tick's time horizon, sampled once when the tick
     *        began (CPU charges during the tick advance the clock; the
     *        due-set must not shift mid-walk).
     */
    sim::Task datagramTimerTick(sim::Process &p,
                                net::DatagramSocket &sock,
                                sim::SimTime now);

  private:
    SharedState &shared_;
    const ProxyConfig &cfg_;
    Engine &engine_;
    /** Reused across messages: the hot path is allocation-budgeted. */
    std::vector<SendAction> actions_;
};

} // namespace siprox::core

#endif // SIPROX_CORE_WORKER_LOOP_HH

/**
 * @file
 * Transport-independent SIP proxying: parse, transaction handling,
 * location routing, Via push/pop, and response construction. Each
 * worker owns one Engine; the architecture-specific code (UDP/TCP/SCTP
 * workers) performs the sends that the Engine emits as SendActions.
 *
 * The Engine charges all user-level CPU costs and takes the shared
 * locks itself, so lock contention behaves identically across
 * architectures (as it does in OpenSER, §3).
 */

#ifndef SIPROX_CORE_ENGINE_HH
#define SIPROX_CORE_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/shared.hh"
#include "net/addr.hh"
#include "sim/process.hh"
#include "sim/task.hh"
#include "sip/builders.hh"
#include "sip/parser.hh"
#include "sip/transaction.hh"

namespace siprox::core {

/** Where an incoming message came from. */
struct MsgSource
{
    net::Addr addr;
    /** TCP connection id it arrived on (0 for datagram transports). */
    std::uint64_t connId = 0;
};

/** One message the worker must transmit. */
struct SendAction
{
    std::string wire;
    net::Addr dstAddr;
    /** Preferred existing TCP connection (0: resolve by address). */
    std::uint64_t dstConnId = 0;
    /** True when this is a response heading back toward a caller. */
    bool toUpstream = false;
};

/**
 * Per-worker SIP proxy engine over the shared state.
 */
class Engine
{
  public:
    Engine(SharedState &shared, const ProxyConfig &cfg,
           net::Addr proxy_addr, int worker_id);

    /**
     * Process one raw SIP message.
     *
     * @param p The worker process (CPU charges and lock waits).
     * @param raw Wire bytes of exactly one message.
     * @param src Origin of the message.
     * @param out Receives the transmissions to perform, in order.
     */
    sim::Task handleMessage(sim::Process &p, std::string raw,
                            MsgSource src,
                            std::vector<SendAction> &out);

    /**
     * Timer B/F fired for a forwarded request that never drew a final
     * response: answer the caller with 408 Request Timeout and put the
     * transaction record on the expiry queue so the table is reclaimed
     * even under sustained loss.
     */
    sim::Task handleTimeout(sim::Process &p,
                            const RetransList::TimedOut &to,
                            std::vector<SendAction> *out);

  private:
    sim::Task handleRegister(sim::Process &p, sip::SipMessage msg,
                             MsgSource src,
                             std::vector<SendAction> *out);
    sim::Task handleRequest(sim::Process &p, sip::SipMessage msg,
                            MsgSource src,
                            std::vector<SendAction> *out);
    sim::Task handleResponse(sim::Process &p, sip::SipMessage msg,
                             MsgSource src,
                             std::vector<SendAction> *out);

    /** Refresh the Via-sent-by alias for TCP connections. */
    sim::Task refreshAlias(sim::Process &p, const sip::SipMessage &msg,
                           MsgSource src);

    /** Digest authentication gate: challenges or verifies. */
    sim::Task checkAuth(sim::Process &p, const sip::SipMessage &msg,
                        MsgSource src, std::vector<SendAction> *out,
                        bool *accepted);

    /** Emit a locally generated response to the request's source. */
    sim::Task replyTo(sim::Process &p, const sip::SipMessage &req,
                      int status, MsgSource src,
                      std::vector<SendAction> *out);

    /** Piggyback this proxy's hop-by-hop overload advertisement on a
     *  response about to be sent upstream (no-op when the hop scheme
     *  is off). Plain state arithmetic: no awaits, no allocations
     *  beyond the arena intern of the rendered value. */
    void attachHopFeedback(sip::SipMessage &rsp, sim::SimTime now);

    /** Park this worker in the `throttled` trace wait state for @p d
     *  (the hop gate's bounded hold before rejecting). */
    sim::Task throttledWait(sim::Process &p, sim::SimTime d);

    /** Resolve a destination address to a TCP connection id (0 if none
     *  or not TCP). Takes and releases the connection-table lock. */
    sim::Task resolveConn(sim::Process &p, net::Addr dst,
                          std::uint64_t *conn_id);

    bool tcp() const { return isStreamTransport(cfg_.transport); }
    bool unreliable() const { return cfg_.transport == Transport::Udp; }
    const char *viaTransport() const;

    /** Apply the resident-state pressure factor to a base cost. */
    sim::SimTime scaled(sim::SimTime base) const;

    SharedState &shared_;
    const ProxyConfig &cfg_;
    net::Addr proxyAddr_;
    /** Our Via host name ("h<id>"), built once instead of per message. */
    std::string viaHost_;
    sip::BranchGenerator branches_;
    std::uint64_t nonce_ = 0;

    // Interned cost centers (named after OpenSER function groups).
    sim::CostCenterId ccParse_;
    sim::CostCenterId ccRoute_;
    sim::CostCenterId ccBuild_;
    sim::CostCenterId ccTm_;
    sim::CostCenterId ccUsrloc_;
    sim::CostCenterId ccTimer_;
    sim::CostCenterId ccConnHash_;
};

} // namespace siprox::core

#endif // SIPROX_CORE_ENGINE_HH

#include "net/network.hh"

#include "net/error.hh"
#include "net/sctp.hh"
#include "net/sst.hh"
#include "net/tcp.hh"
#include "net/tls.hh"
#include "net/udp.hh"

namespace siprox::net {

const char *
netErrcName(NetErrc c)
{
    switch (c) {
      case NetErrc::PortExhausted:
        return "PortExhausted";
      case NetErrc::AddressInUse:
        return "AddressInUse";
      case NetErrc::ConnectionRefused:
        return "ConnectionRefused";
      case NetErrc::SocketLimit:
        return "SocketLimit";
      case NetErrc::NotConnected:
        return "NotConnected";
    }
    return "NetError";
}

Host::Host(Network &net, sim::Machine &machine, std::uint32_t id)
    : net_(net), machine_(machine), id_(id),
      ports_(net.config().ephemeralLo, net.config().ephemeralHi)
{
}

Host::~Host()
{
    // TcpConn handles living in coroutine frames can outlive this
    // host (process teardown happens after network teardown). Mark
    // the endpoints closed so their close path becomes a no-op
    // instead of touching a dead Host/Network.
    for (auto &weak : tcpEndpoints_) {
        if (auto ep = weak.lock())
            ep->closed_ = true;
    }
}

void
Host::adoptEndpoint(const std::shared_ptr<TcpEndpoint> &ep)
{
    // Opportunistically compact so long runs with connection churn
    // don't accumulate dead entries.
    if (tcpEndpoints_.size() >= 64
        && tcpEndpoints_.size() == tcpEndpoints_.capacity()) {
        std::erase_if(tcpEndpoints_,
                      [](const std::weak_ptr<TcpEndpoint> &w) {
                          return w.expired();
                      });
    }
    tcpEndpoints_.push_back(ep);
}

UdpSocket &
Host::udpBind(std::uint16_t port)
{
    ports_.reserve(port);
    auto sock = std::make_unique<UdpSocket>(*this, port);
    auto &ref = *sock;
    udp_.emplace(port, std::move(sock));
    socketOpened();
    return ref;
}

TcpListener &
Host::tcpListen(std::uint16_t port)
{
    ports_.reserve(port);
    auto sock = std::make_unique<TcpListener>(*this, port);
    auto &ref = *sock;
    listeners_.emplace(port, std::move(sock));
    socketOpened();
    return ref;
}

SctpSocket &
Host::sctpBind(std::uint16_t port)
{
    ports_.reserve(port);
    auto sock = std::make_unique<SctpSocket>(*this, port);
    auto &ref = *sock;
    sctp_.emplace(port, std::move(sock));
    socketOpened();
    return ref;
}

SstSocket &
Host::sstBind(std::uint16_t port)
{
    ports_.reserve(port);
    auto sock = std::make_unique<SstSocket>(*this, port);
    auto &ref = *sock;
    sst_.emplace(port, std::move(sock));
    socketOpened();
    return ref;
}

TlsHostState &
Host::tls()
{
    if (!tls_)
        tls_ = std::make_unique<TlsHostState>();
    return *tls_;
}

std::size_t
Host::tlsSessionCount() const
{
    return tls_ ? tls_->sessions.size() : 0;
}

void
Host::tlsForgetTickets()
{
    if (tls_)
        tls_->tickets.clear();
}

Network::Network(sim::Simulation &sim, NetConfig cfg)
    : sim_(sim), cfg_(cfg), faults_(sim.seed())
{
}

Network::~Network() = default;

Host &
Network::attach(sim::Machine &machine)
{
    auto id = static_cast<std::uint32_t>(hosts_.size() + 1);
    hosts_.push_back(std::make_unique<Host>(*this, machine, id));
    return *hosts_.back();
}

Host *
Network::hostById(std::uint32_t id)
{
    if (id == 0 || id > hosts_.size())
        return nullptr;
    return hosts_[id - 1].get();
}

} // namespace siprox::net

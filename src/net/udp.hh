/**
 * @file
 * Simulated UDP socket: message-based, connectionless, unreliable.
 * Multiple processes may block in recvFrom() on the same socket (as
 * OpenSER's symmetric UDP workers do); each datagram wakes one.
 */

#ifndef SIPROX_NET_UDP_HH
#define SIPROX_NET_UDP_HH

#include <deque>
#include <string>

#include "net/addr.hh"
#include "net/datagram.hh"
#include "net/network.hh"
#include "sim/pollable.hh"
#include "sim/process.hh"
#include "sim/task.hh"

namespace siprox::net {

/**
 * A bound UDP socket. Created via Host::udpBind().
 */
class UdpSocket : public DatagramSocket
{
  public:
    UdpSocket(Host &host, std::uint16_t port);
    ~UdpSocket() override;

    /**
     * Send @p payload to @p dst. Charges kernel send cost; the datagram
     * arrives after the wire delay unless lost or the receiver's queue
     * overflows.
     */
    sim::Task sendTo(sim::Process &p, Addr dst,
                     std::string payload) override;

    /** Blocking receive; charges kernel receive cost on delivery. */
    sim::Task recvFrom(sim::Process &p, Datagram &out) override;

    /** Non-blocking receive (no kernel cost charged). */
    bool tryRecvFrom(Datagram &out) override;

    /** Kernel receive cost for one dequeued datagram. */
    sim::Task chargeRecv(sim::Process &p, std::size_t bytes) override;

    Addr localAddr() const override { return Addr{host_.id(), port_}; }

    std::size_t queueDepth() const override { return queue_.size(); }

    /** Datagrams this socket dropped to receive-queue overflow. */
    std::uint64_t overflowDrops() const override
    {
        return overflowDrops_;
    }

    bool pollReady() const override { return !queue_.empty(); }

  private:
    friend class Network;
    friend class Host;

    /** Called by the fabric when a datagram arrives. */
    void deliver(Datagram dgram);

    Host &host_;
    std::uint16_t port_;
    std::deque<Datagram> queue_;
    std::deque<sim::Process *> waiters_;
    std::uint64_t overflowDrops_ = 0;
};

} // namespace siprox::net

#endif // SIPROX_NET_UDP_HH

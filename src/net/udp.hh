/**
 * @file
 * Simulated UDP socket: message-based, connectionless, unreliable.
 * Multiple processes may block in recvFrom() on the same socket (as
 * OpenSER's symmetric UDP workers do); each datagram wakes one.
 */

#ifndef SIPROX_NET_UDP_HH
#define SIPROX_NET_UDP_HH

#include <string>

#include "net/addr.hh"
#include "net/datagram.hh"
#include "net/network.hh"
#include "sim/process.hh"
#include "sim/task.hh"

namespace siprox::net {

/**
 * A bound UDP socket. Created via Host::udpBind().
 */
class UdpSocket : public DatagramSocket
{
  public:
    UdpSocket(Host &host, std::uint16_t port);
    ~UdpSocket() override;

    sim::Task chargeRecvBatch(sim::Process &p, std::size_t msgs,
                              std::size_t bytes) override;
    sim::Task chargeSendBatch(sim::Process &p, std::size_t msgs,
                              std::size_t bytes) override;

  protected:
    /** Loss/fault rolls and wire-delivery scheduling (kernel send cost
     *  already charged by the base). */
    sim::Task sendPrepared(sim::Process &p, Addr dst,
                           std::string payload) override;

  private:
    friend class Network;
    friend class Host;

    /** Called by the fabric when a datagram arrives. */
    void deliver(Datagram dgram);
};

} // namespace siprox::net

#endif // SIPROX_NET_UDP_HH

/**
 * @file
 * The simulated network fabric and per-machine Host endpoints. A Host
 * owns the bound sockets of one machine; the Network routes datagrams
 * and segments between hosts with configurable latency and loss.
 */

#ifndef SIPROX_NET_NETWORK_HH
#define SIPROX_NET_NETWORK_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.hh"
#include "net/config.hh"
#include "net/impairment.hh"
#include "net/port_alloc.hh"
#include "sim/machine.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"

namespace siprox::net {

class Network;
class UdpSocket;
class TcpListener;
class TcpEndpoint;
class TcpConn;
class SctpSocket;
class SstSocket;
struct TlsHostState;

/**
 * Batched datagram I/O accounting: one record per recvBatch/sendBatch
 * syscall. The depth histogram's invariant — sum over d of
 * d * depth[d-1] equals messages — holds exactly while
 * NetConfig::batchMax <= kDepthBuckets (the last bucket clamps deeper
 * batches).
 */
struct BatchIoStats
{
    static constexpr std::size_t kDepthBuckets = 64;

    std::uint64_t calls = 0;    ///< batched syscalls issued
    std::uint64_t messages = 0; ///< packets moved by those calls
    std::uint64_t maxDepth = 0; ///< deepest single batch seen
    /** Bucket d-1 counts batches of exactly d packets. */
    std::array<std::uint64_t, kDepthBuckets> depth{};

    void
    note(std::size_t n)
    {
        ++calls;
        messages += n;
        if (n > maxDepth)
            maxDepth = n;
        std::size_t b = n < kDepthBuckets ? n : kDepthBuckets;
        if (b > 0)
            ++depth[b - 1];
    }
};

/**
 * Per-host wire traffic, split by direction. Counted at the transport
 * send/deliver sites (every datagram, segment, or frame that actually
 * leaves or reaches a host — losses are charged to the sender only), so
 * windowed telemetry can attribute bytes/packets to individual machines
 * rather than the fabric-wide NetStats totals.
 */
struct HostIoStats
{
    std::uint64_t pktsOut = 0;
    std::uint64_t bytesOut = 0;
    std::uint64_t pktsIn = 0;
    std::uint64_t bytesIn = 0;
};

/** Aggregate traffic counters, for tests and benches. */
struct NetStats
{
    std::uint64_t udpSent = 0;
    std::uint64_t udpDelivered = 0;
    std::uint64_t udpLost = 0;
    std::uint64_t udpDropped = 0; ///< receive-queue overflow
    std::uint64_t tcpConnects = 0;
    std::uint64_t tcpRefused = 0;
    std::uint64_t tcpSegments = 0;
    std::uint64_t tcpBytes = 0;
    std::uint64_t sctpMessages = 0;
    std::uint64_t sctpAssocs = 0;
    std::uint64_t sctpDropped = 0; ///< receive-buffer overflow
    // --- TLS over TCP -------------------------------------------------
    std::uint64_t tlsConnects = 0;        ///< handshakes completed
    std::uint64_t tlsHandshakesFull = 0;  ///< full (asymmetric) paths
    std::uint64_t tlsHandshakesResumed = 0; ///< ticket-resumed, 1-RTT
    std::uint64_t tlsZeroRttResumes = 0;  ///< ticket-resumed, 0-RTT
    std::uint64_t tlsSessionEvictions = 0; ///< server cache LRU drops
    std::uint64_t tlsHandshakeAborts = 0; ///< impairment mid-handshake
    std::uint64_t tlsRecords = 0;         ///< records encrypted (sends)
    // --- SST structured streams ---------------------------------------
    std::uint64_t sstMessages = 0; ///< application messages sent
    std::uint64_t sstStreams = 0;  ///< streams opened (local side)
    std::uint64_t sstFrames = 0;   ///< MTU-sized frames on the wire
    std::uint64_t sstChannels = 0; ///< channel setups paid
    std::uint64_t sstDropped = 0;  ///< receive-buffer overflow
    std::uint64_t sstLost = 0;     ///< messages lost to dead links
    // --- batched datagram I/O (all datagram transports) ----------------
    BatchIoStats batchRecv; ///< recvBatch/tryRecvBatch drains
    BatchIoStats batchSend; ///< sendBatch flushes
    // --- injected faults (aggregates; per-link detail in faults()) ----
    std::uint64_t faultDropped = 0;    ///< datagrams lost/partitioned
    std::uint64_t faultDuplicated = 0; ///< duplicate datagrams injected
    std::uint64_t faultDelayed = 0;    ///< deliveries given extra delay
    std::uint64_t tcpFaultRefused = 0; ///< connects refused by fault
    std::uint64_t tcpRstInjected = 0;  ///< mid-stream RSTs injected
    std::uint64_t tcpBlackholed = 0;   ///< segments that never arrive
    std::uint64_t tcpRecoveries = 0;   ///< in-kernel loss recoveries
};

/**
 * One machine's view of the network: its sockets and ports.
 */
class Host
{
  public:
    Host(Network &net, sim::Machine &machine, std::uint32_t id);
    ~Host();

    Host(const Host &) = delete;
    Host &operator=(const Host &) = delete;

    Network &net() const { return net_; }
    sim::Machine &machine() const { return machine_; }
    std::uint32_t id() const { return id_; }

    /** Address of @p port on this host. */
    Addr addr(std::uint16_t port) const { return Addr{id_, port}; }

    /** Bind a UDP socket; throws AddressInUse. */
    UdpSocket &udpBind(std::uint16_t port);

    /** Open a TCP listener; throws AddressInUse. */
    TcpListener &tcpListen(std::uint16_t port);

    /**
     * Actively open a TCP connection. Blocks for the handshake.
     * @param local_port 0 for an ephemeral port.
     * @throws NetError on refusal or port/socket exhaustion.
     */
    sim::Task tcpConnect(sim::Process &p, Addr remote, TcpConn &out,
                         std::uint16_t local_port = 0);

    /** Bind an SCTP one-to-many socket; throws AddressInUse. */
    SctpSocket &sctpBind(std::uint16_t port);

    /** Bind an SST structured-stream socket; throws AddressInUse. */
    SstSocket &sstBind(std::uint16_t port);

    /**
     * Open a TLS connection: TCP connect, then the handshake — full
     * (2 extra RTTs + asymmetric CPU), ticket-resumed (1 RTT), or
     * 0-RTT, depending on the config knobs and both sides' session
     * state. Link faults during a handshake flight abort the connect.
     * @throws NetError on refusal, abort, or port/socket exhaustion.
     */
    sim::Task tlsConnect(sim::Process &p, Addr remote, TcpConn &out);

    /** Server-side resumable-session cache occupancy (tests). */
    std::size_t tlsSessionCount() const;

    /** Drop this host's client-side TLS session tickets (tests). */
    void tlsForgetTickets();

    PortAllocator &ports() { return ports_; }

    /** Currently open socket structures (endpoints + bound sockets). */
    int openSockets() const { return openSockets_; }

    /** Cumulative wire traffic through this host, by direction. */
    const HostIoStats &io() const { return io_; }

    /** One packet/segment/frame of @p bytes put on the wire. */
    void
    noteSent(std::size_t bytes)
    {
        ++io_.pktsOut;
        io_.bytesOut += bytes;
    }

    /** One packet/segment/frame of @p bytes arrived from the wire. */
    void
    noteReceived(std::size_t bytes)
    {
        ++io_.pktsIn;
        io_.bytesIn += bytes;
    }

  private:
    friend class Network;
    friend class TcpEndpoint;
    friend class TcpListener;
    friend class UdpSocket;
    friend class SctpSocket;
    friend class SstSocket;

    void
    socketOpened()
    {
        ++openSockets_;
    }

    void
    socketClosed()
    {
        --openSockets_;
    }

    /** Track every endpoint created on this host so ~Host can mark
     *  them closed: TcpConn handles in coroutine frames may outlive
     *  the Network, and their close path must not touch it. */
    void adoptEndpoint(const std::shared_ptr<TcpEndpoint> &ep);

    /** Lazily created TLS session state (tickets + server cache). */
    TlsHostState &tls();

    Network &net_;
    sim::Machine &machine_;
    std::uint32_t id_;
    PortAllocator ports_;
    int openSockets_ = 0;
    std::unordered_map<std::uint16_t, std::unique_ptr<UdpSocket>> udp_;
    std::unordered_map<std::uint16_t, std::unique_ptr<TcpListener>>
        listeners_;
    std::unordered_map<std::uint16_t, std::unique_ptr<SctpSocket>> sctp_;
    std::unordered_map<std::uint16_t, std::unique_ptr<SstSocket>> sst_;
    std::vector<std::weak_ptr<TcpEndpoint>> tcpEndpoints_;
    std::unique_ptr<TlsHostState> tls_;
    HostIoStats io_;
};

/**
 * The fabric connecting all hosts.
 */
class Network
{
  public:
    explicit Network(sim::Simulation &sim, NetConfig cfg = {});
    ~Network();

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Attach a machine, creating its Host. */
    Host &attach(sim::Machine &machine);

    sim::Simulation &sim() const { return sim_; }
    const NetConfig &config() const { return cfg_; }
    NetConfig &config() { return cfg_; }

    Host *hostById(std::uint32_t id);

    NetStats &stats() { return stats_; }

    /** Link-level fault injection (clean by default). */
    FaultInjector &faults() { return faults_; }
    const FaultInjector &faults() const { return faults_; }

    /** Wire delay for a payload of @p bytes. */
    SimTime
    wireDelay(std::size_t bytes) const
    {
        return cfg_.latency
            + static_cast<SimTime>(bytes) * cfg_.perByteWire;
    }

    /** Next globally unique connection id. */
    std::uint64_t nextConnId() { return ++connIds_; }

  private:
    sim::Simulation &sim_;
    NetConfig cfg_;
    std::vector<std::unique_ptr<Host>> hosts_;
    NetStats stats_;
    FaultInjector faults_;
    std::uint64_t connIds_ = 0;
};

} // namespace siprox::net

#endif // SIPROX_NET_NETWORK_HH

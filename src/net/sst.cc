#include "net/sst.hh"

#include <algorithm>
#include <utility>

#include "net/error.hh"
#include "sim/simulation.hh"

namespace siprox::net {

const char *
sstStreamStateName(SstStreamState s)
{
    switch (s) {
      case SstStreamState::Open:
        return "Open";
      case SstStreamState::HalfClosedLocal:
        return "HalfClosedLocal";
      case SstStreamState::HalfClosedRemote:
        return "HalfClosedRemote";
      case SstStreamState::Closed:
        return "Closed";
    }
    return "?";
}

SstSocket::SstSocket(Host &host, std::uint16_t port)
    : DatagramSocket(host, port, "sst recv")
{
}

SstSocket::~SstSocket() = default;

sim::Task
SstSocket::chargeSendBatch(sim::Process &p, std::size_t msgs,
                           std::size_t bytes)
{
    return chargeBatched(p, host_.net().config().sstSendCost,
                         "kernel:sst_send", msgs, bytes);
}

sim::Task
SstSocket::chargeRecvBatch(sim::Process &p, std::size_t msgs,
                           std::size_t bytes)
{
    return chargeBatched(p, host_.net().config().sstRecvCost,
                         "kernel:sst_recv", msgs, bytes);
}

sim::Task
SstSocket::ensureChannel(sim::Process &p, Addr dst, SimTime &extra)
{
    Network &net = host_.net();
    extra = 0;
    sim::SimTime now = p.sim().now();
    auto it = channels_.find(dst);
    if (it == channels_.end()) {
        // Kernel transparently sets up the channel: CPU on this sender
        // plus one extra round trip absorbed by the first frames.
        co_await p.cpu(net.config().sstChannelCost, "kernel:sst_channel");
        extra = 2 * net.config().latency;
        ++net.stats().sstChannels;
        now = p.sim().now();
        it = channels_.emplace(dst, Channel{now}).first;
        scheduleSweep();
    }
    it->second.lastUse = now;
}

// Member coroutine: SstSocket objects are owned by the Host map and
// never move, so capturing `this` in the frame is safe.
sim::Task
SstSocket::sendPrepared(sim::Process &p, Addr dst, std::string payload)
{
    Network &net = host_.net();
    const NetConfig &cfg = net.config();
    SimTime extra = 0;
    co_await ensureChannel(p, dst, extra);
    // One ephemeral stream per message: setup and teardown folded into
    // the send — the cheap-stream design point.
    co_await p.cpu(cfg.sstStreamCost, "kernel:sst_stream");
    ++net.stats().sstStreams;
    ++net.stats().sstMessages;
    SimTime floor = 0;
    scheduleFrames(dst, ++nextStreamId_, std::move(payload),
                   /*eom=*/true, /*fin=*/true, /*ephemeral=*/true, extra,
                   floor);
}

void
SstSocket::scheduleFrames(Addr dst, std::uint32_t sid,
                          std::string payload, bool eom, bool fin,
                          bool ephemeral, SimTime extra, SimTime &floor)
{
    Network &net = host_.net();
    const NetConfig &cfg = net.config();
    const std::size_t mtu =
        static_cast<std::size_t>(std::max(cfg.sstMtu, 1));
    const std::size_t total = payload.size();
    sim::SimTime now = net.sim().now();
    Network *netp = &net;
    Addr src = localAddr();

    std::size_t offset = 0;
    std::size_t cum = 0;
    bool first = true;
    while (first || offset < total) {
        first = false;
        std::size_t n = std::min(mtu, total - offset);
        bool last = offset + n >= total;
        std::string chunk = (last && offset == 0)
            ? std::move(payload)
            : payload.substr(offset, n);
        offset += n;
        cum += n;
        ++net.stats().sstFrames;
        host_.noteSent(n);

        SimTime fault_delay = 0;
        if (net.faults().enabled()) {
            auto verdict =
                net.faults().onSegment(now, host_.id(), dst.host);
            if (verdict.fate == FaultInjector::SegmentFate::Blackhole) {
                // The substrate lost the frame for good: the whole
                // message is gone (no cross-message retransmission in
                // this model), later frames are not even sent.
                if (eom)
                    ++net.stats().sstLost;
                return;
            }
            if (verdict.fate == FaultInjector::SegmentFate::Rst) {
                // Channels absorb resets QUIC-style: the stream stalls
                // for the in-kernel recovery, nothing surfaces.
                fault_delay += net.faults()
                                   .lookup(host_.id(), dst.host)
                                   .recoveryDelay;
            }
            fault_delay += verdict.extraDelay;
            if (verdict.recovered)
                ++net.stats().tcpRecoveries;
            if (fault_delay > 0)
                ++net.stats().faultDelayed;
        }
        // Ordering is per stream only: frames of this stream never
        // overtake each other, but other streams are independent — no
        // cross-stream head-of-line blocking.
        SimTime arrival = std::max(
            now + net.wireDelay(cum) + extra + fault_delay, floor);
        floor = arrival;
        bool frame_eom = last && eom;
        bool frame_fin = last && fin;
        net.sim().at(arrival, [netp, src, dst, sid, frame_eom, frame_fin,
                               ephemeral,
                               c = std::move(chunk)]() mutable {
            Host *target = netp->hostById(dst.host);
            if (!target)
                return;
            auto sit = target->sst_.find(dst.port);
            if (sit == target->sst_.end())
                return;
            sit->second->deliverFrame(src, sid, std::move(c), frame_eom,
                                      frame_fin, ephemeral);
        });
    }
}

// --- explicit stream API ----------------------------------------------------

sim::Task
SstSocket::openStream(sim::Process &p, Addr dst, std::uint32_t &out)
{
    Network &net = host_.net();
    co_await p.cpu(net.config().sstStreamCost, "kernel:sst_stream");
    ++net.stats().sstStreams;
    std::uint32_t id = ++nextStreamId_;
    local_.emplace(id, LocalStream{dst, SstStreamState::Open, 0});
    out = id;
}

sim::Task
SstSocket::streamSend(sim::Process &p, std::uint32_t id,
                      std::string payload)
{
    auto it = local_.find(id);
    if (it == local_.end() || it->second.state != SstStreamState::Open)
        throw NetError(NetErrc::NotConnected,
                       "sst stream " + std::to_string(id)
                           + " is not open for sending");
    Addr peer = it->second.peer;
    Network &net = host_.net();
    co_await chargeSendBatch(p, 1, payload.size());
    SimTime extra = 0;
    co_await ensureChannel(p, peer, extra);
    // Re-find: the map may have rehashed (or the stream been torn
    // down) while we were suspended.
    it = local_.find(id);
    if (it == local_.end() || it->second.state != SstStreamState::Open)
        co_return;
    ++net.stats().sstMessages;
    scheduleFrames(peer, id, std::move(payload), /*eom=*/true,
                   /*fin=*/false, /*ephemeral=*/false, extra,
                   it->second.deliveryFloor);
}

sim::Task
SstSocket::streamHalfClose(sim::Process &p, std::uint32_t id)
{
    auto it = local_.find(id);
    if (it == local_.end() || it->second.state != SstStreamState::Open)
        throw NetError(NetErrc::NotConnected,
                       "sst stream " + std::to_string(id)
                           + " is not open");
    Addr peer = it->second.peer;
    Network &net = host_.net();
    co_await p.cpu(net.config().sstStreamCost, "kernel:sst_stream");
    SimTime extra = 0;
    co_await ensureChannel(p, peer, extra);
    it = local_.find(id);
    if (it == local_.end())
        co_return;
    it->second.state = SstStreamState::HalfClosedLocal;
    scheduleFrames(peer, id, std::string(), /*eom=*/false, /*fin=*/true,
                   /*ephemeral=*/false, extra, it->second.deliveryFloor);
    // The local record lingers half-closed until the teardown round
    // trip completes, then reads as Closed.
    net.sim().after(2 * net.config().latency + extra,
                    [this, id] { local_.erase(id); });
}

SstStreamState
SstSocket::streamState(std::uint32_t id) const
{
    auto it = local_.find(id);
    if (it != local_.end())
        return it->second.state;
    for (const auto &[src, streams] : remote_) {
        auto rit = streams.find(id);
        if (rit != streams.end())
            return rit->second.state;
    }
    return SstStreamState::Closed;
}

std::size_t
SstSocket::streamCount() const
{
    std::size_t n = local_.size();
    for (const auto &[src, streams] : remote_)
        n += streams.size();
    return n;
}

// --- receive path -----------------------------------------------------------

void
SstSocket::deliverFrame(Addr src, std::uint32_t sid, std::string chunk,
                        bool eom, bool fin, bool ephemeral)
{
    sim::SimTime now = host_.net().sim().now();
    host_.noteReceived(chunk.size());
    // Track the reverse-direction channel (set up by the peer).
    channels_[src].lastUse = now;
    scheduleSweep();
    auto &per_peer = remote_[src];
    RemoteStream &rs = per_peer[sid];
    rs.lastUse = now;
    rs.framer.feed(std::move(chunk), eom);
    while (auto msg = rs.framer.next()) {
        // Bounded like UDP's receive buffer: sustained overload shows
        // up as kernel-side discards, not unbounded memory.
        if (!enqueueDelivery(Datagram{src, localAddr(), std::move(*msg)}))
            ++host_.net().stats().sstDropped;
    }
    if (fin) {
        if (ephemeral) {
            // One-shot stream: teardown is immediate and free.
            per_peer.erase(sid);
            if (per_peer.empty())
                remote_.erase(src);
        } else {
            rs.state = SstStreamState::HalfClosedRemote;
        }
    }
}

void
SstSocket::scheduleSweep()
{
    if (sweepScheduled_ || (channels_.empty() && remote_.empty()))
        return;
    sweepScheduled_ = true;
    SimTime interval = host_.net().config().sstIdleTimeout / 2;
    host_.net().sim().after(interval, [this] {
        sweepScheduled_ = false;
        sweepIdle();
    });
}

void
SstSocket::sweepIdle()
{
    // Kernel-side reaping: no application process is charged.
    SimTime now = host_.net().sim().now();
    SimTime timeout = host_.net().config().sstIdleTimeout;
    for (auto it = channels_.begin(); it != channels_.end();) {
        if (now - it->second.lastUse >= timeout)
            it = channels_.erase(it);
        else
            ++it;
    }
    // Stale remote streams (peer vanished mid-message or never tore
    // down) go the same way.
    for (auto pit = remote_.begin(); pit != remote_.end();) {
        auto &streams = pit->second;
        for (auto it = streams.begin(); it != streams.end();) {
            if (now - it->second.lastUse >= timeout)
                it = streams.erase(it);
            else
                ++it;
        }
        if (streams.empty())
            pit = remote_.erase(pit);
        else
            ++pit;
    }
    scheduleSweep();
}

} // namespace siprox::net

#include "net/tls.hh"

#include <algorithm>

#include "net/error.hh"
#include "net/tcp.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace siprox::net {

bool
TlsHostState::touchSession(std::uint32_t client, std::size_t capacity)
{
    auto it = sessions.find(client);
    if (it != sessions.end()) {
        lru.splice(lru.begin(), lru, it->second);
        return false;
    }
    if (capacity == 0)
        return false; // caching disabled outright
    bool evicted = false;
    if (sessions.size() >= capacity) {
        sessions.erase(lru.back());
        lru.pop_back();
        evicted = true;
    }
    lru.push_front(client);
    sessions.emplace(client, lru.begin());
    return evicted;
}

// --- Host::tlsConnect -------------------------------------------------------

sim::Task
Host::tlsConnect(sim::Process &p, Addr remote, TcpConn &out)
{
    const NetConfig &cfg = net_.config();
    TcpConn conn;
    co_await tcpConnect(p, remote, conn);

    Host *server = net_.hostById(remote.host);

    // Handshake kind: resumption needs the client's ticket AND a live
    // entry in the server's session cache (evictions degrade to full).
    bool resumed = cfg.tlsResumption && server
        && tls().tickets.count(remote) != 0
        && server->tls().hasSession(id_);
    bool zero_rtt = resumed && cfg.tlsZeroRtt;

    int flights = zero_rtt ? 0
        : resumed           ? 1
                            : std::max(cfg.tlsFullHandshakeRtts, 0);
    SimTime hs_cost = zero_rtt ? cfg.tlsZeroRttHandshakeCost
        : resumed              ? cfg.tlsResumedHandshakeCost
                               : cfg.tlsFullHandshakeCost;

    if (sim::trace::enabled()) {
        sim::trace::log(p.sim().now(), "tls-handshake",
                        remote.toString()
                            + (zero_rtt  ? " 0rtt"
                               : resumed ? " resumed"
                                         : " full"));
    }

    // Client-side handshake crypto.
    co_await p.cpu(hs_cost, "tls:handshake");

    // Extra round trips after TCP establishes. Each flight crosses the
    // (possibly impaired) link both ways; a lost or reset flight aborts
    // the handshake and surfaces as a refused connect.
    for (int i = 0; i < flights; ++i) {
        SimTime extra = 0;
        if (net_.faults().enabled()) {
            for (int dir = 0; dir < 2; ++dir) {
                std::uint32_t src = dir == 0 ? id_ : remote.host;
                std::uint32_t dst = dir == 0 ? remote.host : id_;
                auto verdict =
                    net_.faults().onSegment(net_.sim().now(), src, dst);
                if (verdict.fate != FaultInjector::SegmentFate::Deliver) {
                    ++net_.stats().tlsHandshakeAborts;
                    if (verdict.fate == FaultInjector::SegmentFate::Rst)
                        ++net_.stats().tcpRstInjected;
                    else
                        ++net_.stats().tcpBlackholed;
                    conn.closeQuiet("tls-abort");
                    throw NetError(NetErrc::ConnectionRefused,
                                   "TLS handshake aborted: "
                                       + remote.toString());
                }
                extra += verdict.extraDelay;
                if (verdict.recovered)
                    ++net_.stats().tcpRecoveries;
                if (verdict.extraDelay > 0)
                    ++net_.stats().faultDelayed;
            }
        }
        co_await p.sleepFor(2 * cfg.latency + extra);
    }

    // Mark both endpoints as TLS so every send/recv pays record
    // crypto. The server's handshake CPU is charged when its process
    // first reads the connection — that is when the accept side
    // actually runs the handshake in this model, and it keeps the
    // architecture layers' accept paths transport-agnostic.
    auto ep = conn.endpoint();
    if (!ep || ep->state() != TcpState::Established) {
        conn.closeQuiet("tls-dead");
        throw NetError(NetErrc::ConnectionRefused,
                       "connection died during TLS handshake: "
                           + remote.toString());
    }
    ep->tls_ = true;
    if (ep->peer_) {
        ep->peer_->tls_ = true;
        ep->peer_->tlsPendingHandshake_ = hs_cost;
    }

    ++net_.stats().tlsConnects;
    if (zero_rtt)
        ++net_.stats().tlsZeroRttResumes;
    else if (resumed)
        ++net_.stats().tlsHandshakesResumed;
    else
        ++net_.stats().tlsHandshakesFull;

    // Session state for the next connect from this host.
    if (cfg.tlsResumption && server) {
        tls().tickets.insert(remote);
        if (server->tls().touchSession(
                id_,
                static_cast<std::size_t>(
                    std::max(cfg.tlsSessionCacheCapacity, 0))))
            ++net_.stats().tlsSessionEvictions;
    }

    out = std::move(conn);
}

} // namespace siprox::net

/**
 * @file
 * Simulated SCTP one-to-many socket (RFC 4168 style transport for SIP).
 *
 * The §6 discussion's point: SCTP is message-based like UDP but
 * connection-oriented like TCP, with association management done by the
 * kernel. This socket behaves like UDP at the API (sendTo/recvFrom on
 * message boundaries, any process may send without user-level locks)
 * while the kernel transparently establishes associations on first use
 * (extra latency + CPU on that message), keeps them alive, and reaps
 * idle ones — at no application cost.
 */

#ifndef SIPROX_NET_SCTP_HH
#define SIPROX_NET_SCTP_HH

#include <deque>
#include <string>
#include <unordered_map>

#include "net/addr.hh"
#include "net/datagram.hh"
#include "net/network.hh"
#include "sim/pollable.hh"
#include "sim/process.hh"
#include "sim/task.hh"

namespace siprox::net {

/**
 * A bound SCTP one-to-many socket. Created via Host::sctpBind().
 */
class SctpSocket : public DatagramSocket
{
  public:
    SctpSocket(Host &host, std::uint16_t port);
    ~SctpSocket() override;

    /**
     * Reliable, ordered, message-boundary-preserving send. The first
     * message to a new peer pays association setup (kernel CPU + one
     * extra round trip).
     */
    sim::Task sendTo(sim::Process &p, Addr dst,
                     std::string payload) override;

    /** Blocking receive of one whole message. */
    sim::Task recvFrom(sim::Process &p, Datagram &out) override;

    /** Non-blocking receive. */
    bool tryRecvFrom(Datagram &out) override;

    /** Kernel receive cost for one dequeued message. */
    sim::Task chargeRecv(sim::Process &p, std::size_t bytes) override;

    Addr localAddr() const override { return Addr{host_.id(), port_}; }

    /** Live associations on this socket. */
    std::size_t assocCount() const { return assocs_.size(); }

    std::size_t queueDepth() const override { return queue_.size(); }

    /** Messages this socket discarded to receive-buffer overflow. */
    std::uint64_t overflowDrops() const override
    {
        return overflowDrops_;
    }

    bool pollReady() const override { return !queue_.empty(); }

  private:
    friend class Host;

    struct Assoc
    {
        sim::SimTime lastUse = 0;
        /** Ordered delivery: no message may arrive before this. */
        sim::SimTime deliveryFloor = 0;
    };

    void deliver(Datagram dgram);
    void scheduleSweep();
    void sweepIdle();

    Host &host_;
    std::uint16_t port_;
    std::deque<Datagram> queue_;
    std::deque<sim::Process *> waiters_;
    std::unordered_map<Addr, Assoc, AddrHash> assocs_;
    bool sweepScheduled_ = false;
    std::uint64_t overflowDrops_ = 0;
};

} // namespace siprox::net

#endif // SIPROX_NET_SCTP_HH

/**
 * @file
 * Simulated SCTP one-to-many socket (RFC 4168 style transport for SIP).
 *
 * The §6 discussion's point: SCTP is message-based like UDP but
 * connection-oriented like TCP, with association management done by the
 * kernel. This socket behaves like UDP at the API (sendTo/recvFrom on
 * message boundaries, any process may send without user-level locks)
 * while the kernel transparently establishes associations on first use
 * (extra latency + CPU on that message), keeps them alive, and reaps
 * idle ones — at no application cost.
 */

#ifndef SIPROX_NET_SCTP_HH
#define SIPROX_NET_SCTP_HH

#include <string>
#include <unordered_map>

#include "net/addr.hh"
#include "net/datagram.hh"
#include "net/network.hh"
#include "sim/process.hh"
#include "sim/task.hh"

namespace siprox::net {

/**
 * A bound SCTP one-to-many socket. Created via Host::sctpBind().
 */
class SctpSocket : public DatagramSocket
{
  public:
    SctpSocket(Host &host, std::uint16_t port);
    ~SctpSocket() override;

    sim::Task chargeRecvBatch(sim::Process &p, std::size_t msgs,
                              std::size_t bytes) override;
    sim::Task chargeSendBatch(sim::Process &p, std::size_t msgs,
                              std::size_t bytes) override;

    /** Live associations on this socket. */
    std::size_t assocCount() const { return assocs_.size(); }

  protected:
    /**
     * Reliable, ordered, message-boundary-preserving send body. The
     * first message to a new peer pays association setup (kernel CPU +
     * one extra round trip); the per-message syscall cost is already
     * charged by the base.
     */
    sim::Task sendPrepared(sim::Process &p, Addr dst,
                           std::string payload) override;

  private:
    friend class Host;

    struct Assoc
    {
        sim::SimTime lastUse = 0;
        /** Ordered delivery: no message may arrive before this. */
        sim::SimTime deliveryFloor = 0;
    };

    void deliver(Datagram dgram);
    void scheduleSweep();
    void sweepIdle();

    std::unordered_map<Addr, Assoc, AddrHash> assocs_;
    bool sweepScheduled_ = false;
};

} // namespace siprox::net

#endif // SIPROX_NET_SCTP_HH

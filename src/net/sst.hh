/**
 * @file
 * Simulated SST/QUIC-style structured-stream transport: lightweight
 * per-call streams multiplexed over a datagram substrate.
 *
 * The design point (SST, Ford SIGCOMM'07; same shape as QUIC streams):
 * connection state lives in a per-peer *channel* that is paid for once,
 * while each transaction gets its own *stream* whose setup/teardown is
 * orders of magnitude cheaper than a TCP connection cycle — so a
 * connection-per-call workload keeps UDP-like costs while retaining
 * ordered, framed delivery within each stream. There is no cross-stream
 * head-of-line blocking: frames of different streams are delivered
 * independently; ordering floors are per stream only.
 *
 * The DatagramSocket interface maps one sendTo() to one ephemeral
 * stream carrying one message (opened, sent, torn down in a single
 * shot), which is how the proxy architectures use it. Tests exercise
 * the explicit stream API (openStream/streamSend/streamHalfClose)
 * for lifecycle and interleaving behaviour.
 */

#ifndef SIPROX_NET_SST_HH
#define SIPROX_NET_SST_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.hh"
#include "net/datagram.hh"
#include "net/network.hh"
#include "sim/process.hh"
#include "sim/task.hh"

namespace siprox::net {

/** Lifecycle of one SST stream, as seen from one endpoint. */
enum class SstStreamState
{
    Open,
    HalfClosedLocal,  ///< we sent our FIN; peer teardown in flight
    HalfClosedRemote, ///< peer's FIN seen; no more data will arrive
    Closed,           ///< fully torn down (or never existed)
};

const char *sstStreamStateName(SstStreamState s);

/**
 * Per-stream reassembly: frames arrive in order (per-stream floors
 * guarantee it) and are stitched back into whole messages. The first
 * chunk of a message is adopted, not copied, so a message that fits
 * one frame crosses the receive path without a byte copy — the same
 * zero-copy discipline as sip::StreamFramer.
 */
class SstFramer
{
  public:
    /** Append @p chunk; @p end_of_message completes one message. */
    void
    feed(std::string &&chunk, bool end_of_message)
    {
        if (buf_.empty())
            buf_ = std::move(chunk);
        else
            buf_ += chunk;
        if (end_of_message) {
            ready_.push_back(std::move(buf_));
            buf_.clear();
        }
    }

    void
    feed(const std::string &chunk, bool end_of_message)
    {
        feed(std::string(chunk), end_of_message);
    }

    /** Pop the next completed message, if any. */
    std::optional<std::string>
    next()
    {
        if (head_ == ready_.size())
            return std::nullopt;
        std::string m = std::move(ready_[head_++]);
        if (head_ == ready_.size()) {
            // Fully drained: reuse the vector's capacity so the
            // steady-state feed/next cycle is allocation-free.
            ready_.clear();
            head_ = 0;
        } else if (head_ >= kCompactAt
                   && head_ >= ready_.size() - head_) {
            // Under sustained load the ring never fully drains, so the
            // consumed prefix (moved-from strings) would grow without
            // bound. Compact once the dead prefix dominates the live
            // tail, keeping the vector at most ~2x the live count.
            ready_.erase(ready_.begin(),
                         ready_.begin()
                             + static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }
        return m;
    }

    /** Bytes of the current, incomplete message. */
    std::size_t buffered() const { return buf_.size(); }

    /** Completed messages not yet popped. */
    std::size_t readyCount() const { return ready_.size() - head_; }

  private:
    static constexpr std::size_t kCompactAt = 32;

    std::string buf_;
    std::vector<std::string> ready_;
    std::size_t head_ = 0;
};

/**
 * A bound SST socket. Created via Host::sstBind().
 */
class SstSocket : public DatagramSocket
{
  public:
    SstSocket(Host &host, std::uint16_t port);
    ~SstSocket() override;

    sim::Task chargeRecvBatch(sim::Process &p, std::size_t msgs,
                              std::size_t bytes) override;
    sim::Task chargeSendBatch(sim::Process &p, std::size_t msgs,
                              std::size_t bytes) override;

    // --- explicit stream API (long-lived streams; used by tests) ----

    /** Open a long-lived stream to @p dst; no wire traffic yet. */
    sim::Task openStream(sim::Process &p, Addr dst, std::uint32_t &out);

    /** Send one framed message on stream @p id (must be Open). */
    sim::Task streamSend(sim::Process &p, std::uint32_t id,
                         std::string payload);

    /** Send our FIN on stream @p id; the local record lingers as
     *  HalfClosedLocal until the teardown round trip completes. */
    sim::Task streamHalfClose(sim::Process &p, std::uint32_t id);

    /** State of a stream by id — local streams first, then streams
     *  opened towards us; unknown ids read as Closed. */
    SstStreamState streamState(std::uint32_t id) const;

    /** Live stream records (local + remote). */
    std::size_t streamCount() const;

    /** Live channels (peers with connection state). */
    std::size_t channelCount() const { return channels_.size(); }

  protected:
    /**
     * Send one message on an ephemeral stream: open, send, tear down
     * in one shot. The first message to a new peer pays channel setup
     * (kernel CPU + one extra round trip); every message pays the
     * (cheap) stream setup. The per-message syscall cost is already
     * charged by the base.
     */
    sim::Task sendPrepared(sim::Process &p, Addr dst,
                           std::string payload) override;

  private:
    friend class Host;

    struct Channel
    {
        sim::SimTime lastUse = 0;
    };

    struct LocalStream
    {
        Addr peer;
        SstStreamState state = SstStreamState::Open;
        /** Ordered delivery within the stream: no frame may arrive
         *  before this instant. */
        sim::SimTime deliveryFloor = 0;
    };

    struct RemoteStream
    {
        SstStreamState state = SstStreamState::Open;
        sim::SimTime lastUse = 0;
        SstFramer framer;
    };

    /** Ensure a channel to @p dst exists; returns the extra one-time
     *  round-trip delay the next frames must absorb (0 if warm). */
    sim::Task ensureChannel(sim::Process &p, Addr dst, SimTime &extra);

    /** Fragment one message into MTU frames and schedule delivery.
     *  All CPU must be charged before calling; this only rolls faults
     *  and books wire time. @p eom marks the last frame as completing
     *  a message; @p fin additionally carries our half-close. */
    void scheduleFrames(Addr dst, std::uint32_t sid, std::string payload,
                        bool eom, bool fin, bool ephemeral, SimTime extra,
                        SimTime &floor);

    void deliverFrame(Addr src, std::uint32_t sid, std::string chunk,
                      bool eom, bool fin, bool ephemeral);
    void scheduleSweep();
    void sweepIdle();

    std::unordered_map<Addr, Channel, AddrHash> channels_;
    std::unordered_map<std::uint32_t, LocalStream> local_;
    std::unordered_map<Addr,
                       std::unordered_map<std::uint32_t, RemoteStream>,
                       AddrHash>
        remote_;
    std::uint32_t nextStreamId_ = 0;
    bool sweepScheduled_ = false;
};

} // namespace siprox::net

#endif // SIPROX_NET_SST_HH

/**
 * @file
 * Network substrate parameters: wire characteristics and per-syscall
 * kernel CPU costs. Defaults approximate a gigabit LAN and a mid-2000s
 * Linux network stack; the calibration against the paper's absolute
 * numbers is documented in EXPERIMENTS.md.
 */

#ifndef SIPROX_NET_CONFIG_HH
#define SIPROX_NET_CONFIG_HH

#include <cstdint>

#include "sim/time.hh"

namespace siprox::net {

using sim::SimTime;

/** Tunable wire and kernel-cost model for the simulated network. */
struct NetConfig
{
    // --- wire ---------------------------------------------------------
    /** One-way propagation + switching latency. */
    SimTime latency = sim::usecs(60);
    /** Serialization delay per payload byte (1 Gb/s = 8 ns/byte). */
    SimTime perByteWire = sim::nsecs(8);

    // --- kernel CPU costs (charged to the calling process) -------------
    SimTime udpSendCost = sim::usecs(4.0);
    SimTime udpRecvCost = sim::usecs(3.5);
    /** TCP per-call costs include amortized ACK generation and
     *  processing, which UDP does not pay. */
    SimTime tcpSendCost = sim::usecs(10.0);
    SimTime tcpRecvCost = sim::usecs(8.0);
    /** Copy cost per byte, applied on both send and receive. */
    SimTime perByteCpu = sim::nsecs(2);
    SimTime tcpConnectCost = sim::usecs(12);
    SimTime tcpAcceptCost = sim::usecs(10);
    SimTime tcpCloseCost = sim::usecs(6);
    /** SCTP chunk/SACK handling is heavier than UDP's fast path. */
    SimTime sctpSendCost = sim::usecs(7.5);
    SimTime sctpRecvCost = sim::usecs(7.0);
    /** Kernel-side SCTP association setup (charged to first sender). */
    SimTime sctpAssocCost = sim::usecs(14);

    // --- behaviour ------------------------------------------------------
    /** Probability an individual UDP datagram is lost. */
    double udpLossProb = 0.0;
    /** Datagrams buffered per UDP/SCTP socket before drops. */
    int udpRecvQueue = 4096;
    /** TIME_WAIT hold on the active closer's ephemeral port. */
    SimTime timeWait = sim::secs(60);
    /** Per-host socket table limit (fd/conntrack stand-in). */
    int maxSocketsPerHost = 1 << 20;
    /** Ephemeral port range (half-open). */
    std::uint16_t ephemeralLo = 32768;
    std::uint16_t ephemeralHi = 61000;
    /** TCP listener accept-queue limit. */
    int acceptBacklog = 1024;
    /** Idle SCTP associations are reaped by the kernel after this. */
    SimTime sctpIdleTimeout = sim::secs(30);
};

} // namespace siprox::net

#endif // SIPROX_NET_CONFIG_HH

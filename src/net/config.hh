/**
 * @file
 * Network substrate parameters: wire characteristics and per-syscall
 * kernel CPU costs. Defaults approximate a gigabit LAN and a mid-2000s
 * Linux network stack; the calibration against the paper's absolute
 * numbers is documented in EXPERIMENTS.md.
 */

#ifndef SIPROX_NET_CONFIG_HH
#define SIPROX_NET_CONFIG_HH

#include <cstdint>

#include "sim/time.hh"

namespace siprox::net {

using sim::SimTime;

/** Tunable wire and kernel-cost model for the simulated network. */
struct NetConfig
{
    // --- wire ---------------------------------------------------------
    /** One-way propagation + switching latency. */
    SimTime latency = sim::usecs(60);
    /** Serialization delay per payload byte (1 Gb/s = 8 ns/byte). */
    SimTime perByteWire = sim::nsecs(8);

    // --- kernel CPU costs (charged to the calling process) -------------
    SimTime udpSendCost = sim::usecs(4.0);
    SimTime udpRecvCost = sim::usecs(3.5);
    /** TCP per-call costs include amortized ACK generation and
     *  processing, which UDP does not pay. */
    SimTime tcpSendCost = sim::usecs(10.0);
    SimTime tcpRecvCost = sim::usecs(8.0);
    /** Copy cost per byte, applied on both send and receive. */
    SimTime perByteCpu = sim::nsecs(2);
    SimTime tcpConnectCost = sim::usecs(12);
    SimTime tcpAcceptCost = sim::usecs(10);
    SimTime tcpCloseCost = sim::usecs(6);
    /** SCTP chunk/SACK handling is heavier than UDP's fast path. */
    SimTime sctpSendCost = sim::usecs(7.5);
    SimTime sctpRecvCost = sim::usecs(7.0);
    /** Kernel-side SCTP association setup (charged to first sender). */
    SimTime sctpAssocCost = sim::usecs(14);

    // --- batched datagram I/O (recvmmsg/sendmmsg) -----------------------
    /**
     * Messages moved per simulated datagram syscall. 1 (default)
     * models the classic one-packet recvfrom/sendto path and keeps
     * every existing scenario digest byte-identical; >1 lets the
     * batch-aware receive/send paths amortize the fixed part of the
     * syscall cost over a burst, the way recvmmsg/sendmmsg do.
     */
    int batchMax = 1;
    /**
     * Fraction of each per-message kernel send/recv cost that is the
     * fixed syscall crossing (mode switch, fd lookup, cache refill)
     * rather than per-packet work. A batch of n messages costs
     * fixed + n * (cost - fixed) + bytes * perByteCpu, which
     * degenerates to exactly the unbatched charge at n = 1.
     */
    double batchFixedShare = 0.6;

    // --- TLS over TCP (RFC 3261 sips) -----------------------------------
    /** Asymmetric-crypto CPU for a full handshake, charged once per
     *  side (client at connect, server on its first read). */
    SimTime tlsFullHandshakeCost = sim::usecs(120);
    /** Symmetric-only resumed handshake (session ticket accepted). */
    SimTime tlsResumedHandshakeCost = sim::usecs(30);
    /** 0-RTT resume: ticket + early data, no extra flight. */
    SimTime tlsZeroRttHandshakeCost = sim::usecs(18);
    /** Extra round trips a full handshake adds after TCP establishes
     *  (TLS 1.2 shape; a resumed handshake pays one, 0-RTT none). */
    int tlsFullHandshakeRtts = 2;
    /** Per-record framing/MAC CPU added to every TLS send and recv. */
    SimTime tlsRecordCost = sim::usecs(1.5);
    /** Bulk-cipher CPU per payload byte (both directions). */
    SimTime tlsPerByteCpu = sim::nsecs(4);
    /** Server-side session cache entries (per host, LRU-evicted).
     *  A client whose session was evicted falls back to a full
     *  handshake on its next connect. */
    int tlsSessionCacheCapacity = 4096;
    /** Offer/accept session resumption at all. */
    bool tlsResumption = true;
    /** Resume with 0-RTT early data instead of one round trip. */
    bool tlsZeroRtt = false;

    // --- SST (structured streams over a datagram substrate) -------------
    /** Kernel send/recv cost per message (UDP-like fast path plus
     *  stream framing). */
    SimTime sstSendCost = sim::usecs(5.0);
    SimTime sstRecvCost = sim::usecs(4.5);
    /** One-time channel (connection) setup to a new peer, charged to
     *  the first sender; the channel also pays one extra round trip. */
    SimTime sstChannelCost = sim::usecs(12);
    /** Lightweight per-stream setup/teardown CPU — the design point:
     *  orders of magnitude below a TCP+TLS connection cycle. */
    SimTime sstStreamCost = sim::usecs(0.8);
    /** Datagram-substrate MTU; larger messages are fragmented into
     *  frames and reassembled in order per stream. */
    int sstMtu = 1200;
    /** Idle SST channels are reaped by the kernel after this. */
    SimTime sstIdleTimeout = sim::secs(30);

    // --- behaviour ------------------------------------------------------
    /** Probability an individual UDP datagram is lost. */
    double udpLossProb = 0.0;
    /** Datagrams buffered per UDP/SCTP socket before drops. */
    int udpRecvQueue = 4096;
    /** TIME_WAIT hold on the active closer's ephemeral port. */
    SimTime timeWait = sim::secs(60);
    /** Per-host socket table limit (fd/conntrack stand-in). */
    int maxSocketsPerHost = 1 << 20;
    /** Ephemeral port range (half-open). */
    std::uint16_t ephemeralLo = 32768;
    std::uint16_t ephemeralHi = 61000;
    /** TCP listener accept-queue limit. */
    int acceptBacklog = 1024;
    /** Idle SCTP associations are reaped by the kernel after this. */
    SimTime sctpIdleTimeout = sim::secs(30);
};

} // namespace siprox::net

#endif // SIPROX_NET_CONFIG_HH

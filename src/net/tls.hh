/**
 * @file
 * TLS-over-TCP session state (RFC 3261 "sips", port 5061). The wire
 * behaviour lives on the TCP endpoints (per-record crypto cost) and in
 * Host::tlsConnect (handshake flights and CPU); this header holds the
 * per-host session-resumption state those paths consult.
 *
 * What is modeled (because connection churn depends on it): the
 * asymmetric-crypto cost gap between a full and a resumed handshake,
 * the extra round trips a full handshake adds after TCP establishes,
 * a bounded LRU server-side session cache whose evictions force full
 * handshakes, and optional 0-RTT resumption. What is not modeled:
 * certificate chains, cipher negotiation, and key-update records —
 * none of them change the churn-vs-persistent comparison the paper's
 * methodology turns on.
 */

#ifndef SIPROX_NET_TLS_HH
#define SIPROX_NET_TLS_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "net/addr.hh"

namespace siprox::net {

/**
 * Per-host TLS session state, lazily created on first use.
 *
 * Client side: `tickets` records the server addresses this host holds
 * a session ticket for. Server side: `sessions` is the bounded
 * resumable-session cache keyed by client host id, LRU-evicted at
 * capacity. Resumption needs BOTH — the client must present the
 * ticket and the server must still hold the session; an evicted entry
 * silently degrades the next connect to a full handshake.
 */
struct TlsHostState
{
    /** Servers this host (as a client) can offer a ticket to. */
    std::unordered_set<Addr, AddrHash> tickets;

    /** Server cache LRU order, most recently used at the front. */
    std::list<std::uint32_t> lru;
    /** Server cache: client host id -> position in `lru`. */
    std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator>
        sessions;

    bool
    hasSession(std::uint32_t client) const
    {
        return sessions.find(client) != sessions.end();
    }

    /**
     * Record a completed handshake with @p client: move it to the
     * front of the LRU, inserting if new and evicting the coldest
     * entry when over @p capacity.
     * @return true if an entry was evicted to make room.
     */
    bool touchSession(std::uint32_t client, std::size_t capacity);
};

} // namespace siprox::net

#endif // SIPROX_NET_TLS_HH

#include "net/sctp.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/simulation.hh"

namespace siprox::net {

SctpSocket::SctpSocket(Host &host, std::uint16_t port)
    : DatagramSocket(host, port, "sctp recv")
{
}

SctpSocket::~SctpSocket() = default;

sim::Task
SctpSocket::chargeSendBatch(sim::Process &p, std::size_t msgs,
                            std::size_t bytes)
{
    return chargeBatched(p, host_.net().config().sctpSendCost,
                         "kernel:sctp_send", msgs, bytes);
}

sim::Task
SctpSocket::chargeRecvBatch(sim::Process &p, std::size_t msgs,
                            std::size_t bytes)
{
    return chargeBatched(p, host_.net().config().sctpRecvCost,
                         "kernel:sctp_recv", msgs, bytes);
}

// Member coroutine: SctpSocket objects are owned by the Host map and
// never move, so capturing `this` in the frame is safe.
sim::Task
SctpSocket::sendPrepared(sim::Process &p, Addr dst, std::string payload)
{
    Network &net = host_.net();
    const NetConfig &cfg = net.config();
    const std::size_t bytes = payload.size();
    SimTime extra = 0;
    sim::SimTime now = p.sim().now();
    auto it = assocs_.find(dst);
    if (it == assocs_.end()) {
        // Kernel transparently sets up the association: CPU on this
        // sender plus one extra round trip for the first message.
        co_await p.cpu(cfg.sctpAssocCost, "kernel:sctp_assoc");
        extra = 2 * cfg.latency;
        ++net.stats().sctpAssocs;
        now = p.sim().now();
        it = assocs_.emplace(dst, Assoc{now, now}).first;
        scheduleSweep();
    }
    it->second.lastUse = now;
    ++net.stats().sctpMessages;
    host_.noteSent(bytes);
    if (net.faults().enabled()) {
        auto verdict =
            net.faults().onSegment(now, host_.id(), dst.host);
        if (verdict.fate == FaultInjector::SegmentFate::Blackhole) {
            // Association is dead; the message never arrives.
            co_return;
        }
        // SCTP has no RST fate in this model; a reset roll just
        // behaves like a recovered loss on the ordered stream.
        if (verdict.fate == FaultInjector::SegmentFate::Rst)
            verdict.extraDelay +=
                net.faults().lookup(host_.id(), dst.host).recoveryDelay;
        if (verdict.recovered)
            ++net.stats().tcpRecoveries;
        if (verdict.extraDelay > 0)
            ++net.stats().faultDelayed;
        extra += verdict.extraDelay;
    }
    // SCTP streams are ordered: later messages never overtake earlier
    // ones held up by association setup.
    SimTime arrival =
        std::max(now + net.wireDelay(bytes) + extra,
                 it->second.deliveryFloor);
    it->second.deliveryFloor = arrival;
    Network *netp = &net;
    Addr src = localAddr();
    p.sim().at(arrival,
               [netp, src, dst, data = std::move(payload)]() mutable {
        Host *target = netp->hostById(dst.host);
        if (!target)
            return;
        auto sit = target->sctp_.find(dst.port);
        if (sit == target->sctp_.end())
            return;
        sit->second->deliver(Datagram{src, dst, std::move(data)});
    });
}

void
SctpSocket::deliver(Datagram dgram)
{
    host_.noteReceived(dgram.payload.size());
    // Track the reverse-direction association (set up by the peer).
    assocs_[dgram.src].lastUse = host_.net().sim().now();
    scheduleSweep();
    // The receive buffer is bounded like UDP's. Real SCTP would close
    // the peer's rwnd instead; modeling that as a kernel-side discard
    // keeps the socket unbuffered-growth-free and makes sustained
    // overload visible, which is what matters here.
    if (!enqueueDelivery(std::move(dgram)))
        ++host_.net().stats().sctpDropped;
}

void
SctpSocket::scheduleSweep()
{
    if (sweepScheduled_ || assocs_.empty())
        return;
    sweepScheduled_ = true;
    SimTime interval = host_.net().config().sctpIdleTimeout / 2;
    host_.net().sim().after(interval, [this] {
        sweepScheduled_ = false;
        sweepIdle();
    });
}

void
SctpSocket::sweepIdle()
{
    // Kernel-side reaping: no application process is charged.
    SimTime now = host_.net().sim().now();
    SimTime timeout = host_.net().config().sctpIdleTimeout;
    for (auto it = assocs_.begin(); it != assocs_.end();) {
        if (now - it->second.lastUse >= timeout)
            it = assocs_.erase(it);
        else
            ++it;
    }
    scheduleSweep();
}

} // namespace siprox::net

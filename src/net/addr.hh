/**
 * @file
 * Network addressing: a (host id, port) pair. Host ids are assigned by
 * the Network when a machine attaches.
 */

#ifndef SIPROX_NET_ADDR_HH
#define SIPROX_NET_ADDR_HH

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace siprox::net {

/** A transport address in the simulated network. */
struct Addr
{
    std::uint32_t host = 0;
    std::uint16_t port = 0;

    auto operator<=>(const Addr &) const = default;

    bool valid() const { return port != 0; }

    std::string
    toString() const
    {
        return "h" + std::to_string(host) + ":" + std::to_string(port);
    }
};

struct AddrHash
{
    std::size_t
    operator()(const Addr &a) const
    {
        return std::hash<std::uint64_t>{}(
            (static_cast<std::uint64_t>(a.host) << 16) | a.port);
    }
};

} // namespace siprox::net

#endif // SIPROX_NET_ADDR_HH

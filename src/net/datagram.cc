#include "net/datagram.hh"

#include <algorithm>
#include <utility>

#include "net/network.hh"
#include "sim/simulation.hh"

namespace siprox::net {

DatagramSocket::DatagramSocket(Host &host, std::uint16_t port,
                               const char *recv_block_reason)
    : host_(host), port_(port), recvBlockReason_(recv_block_reason)
{
}

DatagramSocket::~DatagramSocket() = default;

Addr
DatagramSocket::localAddr() const
{
    return Addr{host_.id(), port_};
}

sim::Task
DatagramSocket::sendTo(sim::Process &p, Addr dst, std::string payload)
{
    co_await chargeSendBatch(p, 1, payload.size());
    co_await sendPrepared(p, dst, std::move(payload));
}

sim::Task
DatagramSocket::sendBatch(sim::Process &p,
                          std::vector<OutDatagram> &msgs)
{
    Network &net = host_.net();
    const std::size_t bmax = static_cast<std::size_t>(
        std::max(net.config().batchMax, 1));
    std::size_t i = 0;
    while (i < msgs.size()) {
        std::size_t n = std::min(bmax, msgs.size() - i);
        std::size_t bytes = 0;
        for (std::size_t k = i; k < i + n; ++k)
            bytes += msgs[k].payload.size();
        net.stats().batchSend.note(n);
        co_await chargeSendBatch(p, n, bytes);
        for (std::size_t k = i; k < i + n; ++k)
            co_await sendPrepared(p, msgs[k].dst,
                                  std::move(msgs[k].payload));
        i += n;
    }
    msgs.clear();
}

sim::Task
DatagramSocket::recvFrom(sim::Process &p, Datagram &out)
{
    while (!tryRecvFrom(out)) {
        waiters_.push_back(&p);
        co_await p.block(recvBlockReason_, sim::trace::Wait::Socket);
        auto it = std::find(waiters_.begin(), waiters_.end(), &p);
        if (it != waiters_.end())
            waiters_.erase(it);
        consumeWakeCapacity();
    }
    co_await chargeRecv(p, out.payload.size());
}

sim::Task
DatagramSocket::recvBatch(sim::Process &p, std::vector<Datagram> &out,
                          int max)
{
    out.clear();
    while (queue_.empty()) {
        waiters_.push_back(&p);
        co_await p.block(recvBlockReason_, sim::trace::Wait::Socket);
        auto it = std::find(waiters_.begin(), waiters_.end(), &p);
        if (it != waiters_.end())
            waiters_.erase(it);
        consumeWakeCapacity();
    }
    std::size_t bytes = 0;
    const std::size_t cap =
        static_cast<std::size_t>(std::max(max, 1));
    while (out.size() < cap && !queue_.empty()) {
        bytes += queue_.front().payload.size();
        out.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }
    host_.net().stats().batchRecv.note(out.size());
    co_await chargeRecvBatch(p, out.size(), bytes);
}

bool
DatagramSocket::tryRecvFrom(Datagram &out)
{
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

std::size_t
DatagramSocket::tryRecvBatch(std::vector<Datagram> &out, int max,
                             std::size_t &bytes)
{
    out.clear();
    bytes = 0;
    const std::size_t cap =
        static_cast<std::size_t>(std::max(max, 1));
    while (out.size() < cap && !queue_.empty()) {
        bytes += queue_.front().payload.size();
        out.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }
    if (!out.empty())
        host_.net().stats().batchRecv.note(out.size());
    return out.size();
}

sim::Task
DatagramSocket::chargeRecv(sim::Process &p, std::size_t bytes)
{
    co_await chargeRecvBatch(p, 1, bytes);
}

sim::Task
DatagramSocket::chargeBatched(sim::Process &p, sim::SimTime per_msg_cost,
                              const char *cost_center, std::size_t msgs,
                              std::size_t bytes)
{
    const NetConfig &cfg = host_.net().config();
    sim::SimTime fixed = static_cast<sim::SimTime>(
        static_cast<double>(per_msg_cost) * cfg.batchFixedShare);
    if (fixed < 0)
        fixed = 0;
    if (fixed > per_msg_cost)
        fixed = per_msg_cost;
    // fixed + marginal == per_msg_cost by construction, so a batch of
    // one charges exactly the legacy per-message cost.
    sim::SimTime marginal = per_msg_cost - fixed;
    co_await p.cpu(fixed
                       + static_cast<sim::SimTime>(msgs) * marginal
                       + static_cast<sim::SimTime>(bytes)
                           * cfg.perByteCpu,
                   cost_center);
}

bool
DatagramSocket::enqueueDelivery(Datagram dgram)
{
    const NetConfig &cfg = host_.net().config();
    if (static_cast<int>(queue_.size()) >= cfg.udpRecvQueue) {
        ++overflowDrops_;
        return false;
    }
    queue_.push_back(std::move(dgram));
    if (queue_.size() > queuePeak_)
        queuePeak_ = queue_.size();
    // Wake suppression under batching: every wake already in flight
    // will drain up to batchMax messages, so waking one receiver per
    // delivery just bounces the extra receivers off an already-empty
    // queue (a wasted block/wake round trip each) and keeps real batch
    // depth shallow. Only wake another receiver once the queue exceeds
    // what the in-flight wakes can drain. batchMax <= 1 keeps the
    // legacy one-wake-per-delivery behaviour verbatim (digest-pinned).
    if (!waiters_.empty()
        && (cfg.batchMax <= 1 || wokenCapacity_ < queue_.size())) {
        sim::Process *w = waiters_.front();
        waiters_.pop_front();
        w->wake();
        if (cfg.batchMax > 1)
            wokenCapacity_ += static_cast<std::size_t>(cfg.batchMax);
    }
    notifyPollWaiters();
    return true;
}

void
DatagramSocket::consumeWakeCapacity()
{
    const NetConfig &cfg = host_.net().config();
    if (cfg.batchMax <= 1)
        return;
    std::size_t share = static_cast<std::size_t>(cfg.batchMax);
    wokenCapacity_ -= wokenCapacity_ < share ? wokenCapacity_ : share;
}

} // namespace siprox::net

/**
 * @file
 * Common interface of the message-oriented sockets (UDP, SCTP, SST).
 *
 * The symmetric-worker and event-driven proxy architectures are
 * transport-generic over datagram sockets: they receive whole messages,
 * send whole messages, and sample queue depth/overflow for overload
 * control. Folding the transports behind one interface keeps that code
 * free of per-transport branches; the transports differ only in what
 * the kernel does underneath (SCTP associates, retransmits, and keeps
 * ordering; SST multiplexes streams over a channel; UDP does none of
 * that).
 *
 * The base class owns the receive queue, blocked-receiver wakeups, and
 * the batched I/O paths (recvBatch/sendBatch — the recvmmsg/sendmmsg
 * model): one simulated syscall charge covers up to NetConfig::batchMax
 * messages, split as a fixed crossing cost plus a per-packet marginal
 * cost. Transports plug in only their per-message cost centers and the
 * post-charge send body (association/channel setup, fault rolls, wire
 * scheduling).
 */

#ifndef SIPROX_NET_DATAGRAM_HH
#define SIPROX_NET_DATAGRAM_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/addr.hh"
#include "sim/pollable.hh"
#include "sim/process.hh"
#include "sim/task.hh"

namespace siprox::net {

class Host;

/** One received message. */
struct Datagram
{
    Addr src;
    Addr dst;
    std::string payload;
};

/** One outgoing message, queued for a batched send. */
struct OutDatagram
{
    Addr dst;
    std::string payload;
};

/**
 * A bound message-oriented socket. pollReady() (inherited from
 * sim::Pollable) is true while the receive queue is non-empty, so
 * readiness loops can wait on several sockets at once.
 *
 * Member coroutines capture `this`: sockets are owned by the Host maps
 * and never move, so that is safe (see the lifetime rule in
 * sim/task.hh).
 */
class DatagramSocket : public sim::Pollable
{
  public:
    /**
     * @param recv_block_reason Static trace label for a receiver
     *        blocking on an empty queue ("udp recv", "sctp recv"...).
     */
    DatagramSocket(Host &host, std::uint16_t port,
                   const char *recv_block_reason);
    ~DatagramSocket() override;

    /**
     * Send @p payload to @p dst. Charges kernel send cost; the message
     * arrives after the wire delay unless lost/impaired or the
     * receiver's queue overflows.
     */
    sim::Task sendTo(sim::Process &p, Addr dst, std::string payload);

    /**
     * Send every queued message, charging one batched syscall per
     * NetConfig::batchMax messages (sendmmsg). Consumes and clears
     * @p msgs, which must stay valid across the call (own it in the
     * calling coroutine's frame).
     */
    sim::Task sendBatch(sim::Process &p, std::vector<OutDatagram> &msgs);

    /** Blocking receive of one whole message; charges kernel receive
     *  cost on delivery. */
    sim::Task recvFrom(sim::Process &p, Datagram &out);

    /**
     * Blocking receive of up to @p max messages in one simulated
     * syscall (recvmmsg): waits for the first message, drains whatever
     * else is queued up to the cap, and charges one batched kernel
     * cost for the lot. @p out is cleared first and must stay valid
     * across the call.
     */
    sim::Task recvBatch(sim::Process &p, std::vector<Datagram> &out,
                        int max);

    /** Non-blocking receive (no kernel cost charged — pair with
     *  chargeRecv() when dequeuing from a readiness loop). */
    bool tryRecvFrom(Datagram &out);

    /**
     * Non-blocking batched dequeue of up to @p max messages; no kernel
     * cost charged (readiness loops pair this with chargeRecvBatch()).
     * @p out is cleared first; @p bytes receives the total payload
     * size. Returns the number of messages dequeued.
     */
    std::size_t tryRecvBatch(std::vector<Datagram> &out, int max,
                             std::size_t &bytes);

    /**
     * Kernel receive-path cost for one message of @p bytes. Readiness
     * loops that dequeue via tryRecvFrom() charge this explicitly so
     * the non-blocking read path costs the same as a blocking
     * recvFrom().
     */
    sim::Task chargeRecv(sim::Process &p, std::size_t bytes);

    /** Batched kernel receive cost: one syscall crossing amortized
     *  over @p msgs messages totalling @p bytes. */
    virtual sim::Task chargeRecvBatch(sim::Process &p, std::size_t msgs,
                                      std::size_t bytes) = 0;

    /** Batched kernel send cost (same model as chargeRecvBatch). */
    virtual sim::Task chargeSendBatch(sim::Process &p, std::size_t msgs,
                                      std::size_t bytes) = 0;

    Addr localAddr() const;

    /** Receive-queue depth (overload-control occupancy signal). */
    std::size_t queueDepth() const { return queue_.size(); }

    /** Messages discarded to receive-queue overflow. */
    std::uint64_t overflowDrops() const { return overflowDrops_; }

    /** Deepest the receive queue has ever been (telemetry gauge). */
    std::size_t queuePeak() const { return queuePeak_; }

    bool pollReady() const override { return !queue_.empty(); }

  protected:
    /**
     * Transport body of one send, *after* the kernel syscall charge
     * (sendTo/sendBatch bill that): association/channel setup, loss
     * and fault rolls, stats, and wire-delivery scheduling.
     */
    virtual sim::Task sendPrepared(sim::Process &p, Addr dst,
                                   std::string payload) = 0;

    /**
     * Batched per-message kernel charge: fixed crossing share plus
     * per-message marginal cost plus the per-byte copy cost, in one
     * cpu() charge to @p cost_center. Exactly equal to the legacy
     * per-message charge when @p msgs == 1.
     */
    sim::Task chargeBatched(sim::Process &p, sim::SimTime per_msg_cost,
                            const char *cost_center, std::size_t msgs,
                            std::size_t bytes);

    /**
     * Bounded enqueue on the receive queue; wakes one blocked receiver
     * and the poll waiters. Returns false on overflow (overflowDrops_
     * is counted here; the caller counts its per-transport drop stat).
     */
    bool enqueueDelivery(Datagram dgram);

    Host &host_;
    std::uint16_t port_;
    std::deque<Datagram> queue_;
    std::deque<sim::Process *> waiters_;
    std::uint64_t overflowDrops_ = 0;
    std::size_t queuePeak_ = 0;

  private:
    /** Retire one in-flight wake's drain share (batching only). */
    void consumeWakeCapacity();

    const char *recvBlockReason_;
    /** Messages the wakes already in flight will drain (batchMax per
     *  pending wake) — enqueueDelivery()'s wake-suppression budget. */
    std::size_t wokenCapacity_ = 0;
};

} // namespace siprox::net

#endif // SIPROX_NET_DATAGRAM_HH

/**
 * @file
 * Common interface of the message-oriented sockets (UDP and SCTP).
 *
 * The symmetric-worker and event-driven proxy architectures are
 * transport-generic over datagram sockets: they receive whole messages,
 * send whole messages, and sample queue depth/overflow for overload
 * control. Folding UDP and SCTP behind one interface keeps that code
 * free of per-transport branches; the transports differ only in what
 * the kernel does underneath (SCTP associates, retransmits, and keeps
 * ordering; UDP does none of that).
 */

#ifndef SIPROX_NET_DATAGRAM_HH
#define SIPROX_NET_DATAGRAM_HH

#include <cstdint>
#include <string>

#include "net/addr.hh"
#include "sim/pollable.hh"
#include "sim/process.hh"
#include "sim/task.hh"

namespace siprox::net {

/** One received message. */
struct Datagram
{
    Addr src;
    Addr dst;
    std::string payload;
};

/**
 * A bound message-oriented socket. pollReady() (inherited from
 * sim::Pollable) is true while the receive queue is non-empty, so
 * readiness loops can wait on several sockets at once.
 */
class DatagramSocket : public sim::Pollable
{
  public:
    /**
     * Send @p payload to @p dst. Charges kernel send cost; the message
     * arrives after the wire delay unless lost/impaired or the
     * receiver's queue overflows.
     */
    virtual sim::Task sendTo(sim::Process &p, Addr dst,
                             std::string payload) = 0;

    /** Blocking receive of one whole message; charges kernel receive
     *  cost on delivery. */
    virtual sim::Task recvFrom(sim::Process &p, Datagram &out) = 0;

    /** Non-blocking receive (no kernel cost charged — pair with
     *  chargeRecv() when dequeuing from a readiness loop). */
    virtual bool tryRecvFrom(Datagram &out) = 0;

    /**
     * Kernel receive-path cost for one message of @p bytes. Readiness
     * loops that dequeue via tryRecvFrom() charge this explicitly so
     * the non-blocking read path costs the same as a blocking
     * recvFrom().
     */
    virtual sim::Task chargeRecv(sim::Process &p, std::size_t bytes) = 0;

    virtual Addr localAddr() const = 0;

    /** Receive-queue depth (overload-control occupancy signal). */
    virtual std::size_t queueDepth() const = 0;

    /** Messages discarded to receive-queue overflow. */
    virtual std::uint64_t overflowDrops() const = 0;
};

} // namespace siprox::net

#endif // SIPROX_NET_DATAGRAM_HH

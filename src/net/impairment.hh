/**
 * @file
 * Link-level fault injection. An Impairment describes what can go
 * wrong on one directed host-to-host link (loss, duplication,
 * reordering, delay/jitter, hard partitions, and TCP-specific faults);
 * the FaultInjector holds the per-link policies, rolls the dice with
 * its own seed-derived RNG, and records per-link counters.
 *
 * The transport split mirrors the paper's argument: on UDP a lost
 * datagram simply vanishes and RFC 3261 retransmission at the
 * endpoints must recover it, while on TCP/SCTP the kernel recovers
 * losses itself — modeled as an added recovery delay that stalls the
 * ordered stream (head-of-line blocking) instead of a drop.
 *
 * Determinism: the injector's RNG is derived from the simulation seed
 * and is consulted in event order, so the same seed reproduces the
 * exact same fault pattern; different seeds give different patterns.
 */

#ifndef SIPROX_NET_IMPAIRMENT_HH
#define SIPROX_NET_IMPAIRMENT_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/rng.hh"
#include "sim/time.hh"
#include "stats/fault_stats.hh"

namespace siprox::net {

using sim::SimTime;

/** One scheduled connectivity outage: [start, stop). */
struct PartitionWindow
{
    SimTime start = 0;
    SimTime stop = sim::kTimeNever;

    bool
    active(SimTime now) const
    {
        return now >= start && now < stop;
    }
};

/** What can go wrong on one directed link. All-defaults = clean. */
struct Impairment
{
    // --- datagram transports (UDP; loss on SCTP recovers in-kernel) ---
    /** Probability an individual datagram/segment is lost. */
    double lossProb = 0.0;
    /** Probability a datagram is delivered twice (UDP only). */
    double dupProb = 0.0;
    /** Probability a datagram is held back for up to reorderWindow,
     *  letting later datagrams overtake it (UDP only). */
    double reorderProb = 0.0;
    SimTime reorderWindow = sim::msecs(20);

    // --- all transports -----------------------------------------------
    /** Fixed extra one-way delay. */
    SimTime extraDelay = 0;
    /** Uniform random extra delay in [0, jitter). */
    SimTime jitter = 0;
    /** Hard outages; deliveries inside a window are dropped (UDP) or
     *  held until the window closes (TCP/SCTP, finite windows). */
    std::vector<PartitionWindow> partitions;

    // --- TCP-specific --------------------------------------------------
    /** Probability a connection attempt is refused (SYN -> RST). */
    double connectRefuseProb = 0.0;
    /** Probability a data segment triggers a mid-stream RST. */
    double rstProb = 0.0;
    /** Stalled peer: segments are accepted by the kernel but never
     *  arrive (send-side blackhole without any error signal). */
    bool stalled = false;
    /** In-kernel recovery time per lost TCP/SCTP segment; stalls the
     *  ordered stream behind the recovered segment. */
    SimTime recoveryDelay = sim::msecs(200);

    /** True when this impairment can never alter a delivery. */
    bool
    trivial() const
    {
        return lossProb <= 0 && dupProb <= 0 && reorderProb <= 0
            && extraDelay <= 0 && jitter <= 0 && partitions.empty()
            && connectRefuseProb <= 0 && rstProb <= 0 && !stalled;
    }
};

/**
 * Per-link fault policies plus the dice and counters. Owned by the
 * Network; consulted by the UDP/TCP/SCTP delivery paths.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed);

    /** Policy for every link without an explicit one. */
    void setDefault(Impairment imp);

    /** Policy for the directed link @p src -> @p dst. */
    void setLink(std::uint32_t src, std::uint32_t dst, Impairment imp);

    /** Same policy in both directions between @p a and @p b. */
    void setLinkSymmetric(std::uint32_t a, std::uint32_t b,
                          const Impairment &imp);

    /** Schedule a hard two-way partition of @p a from @p b. Existing
     *  per-link policies (or a copy of the default) gain the window. */
    void addPartition(std::uint32_t a, std::uint32_t b, SimTime start,
                      SimTime stop = sim::kTimeNever);

    /** Effective policy for @p src -> @p dst. */
    const Impairment &lookup(std::uint32_t src,
                             std::uint32_t dst) const;

    /** True if any direction between the hosts is partitioned now. */
    bool partitioned(std::uint32_t src, std::uint32_t dst,
                     SimTime now) const;

    /** Fast-path check: no policy configured anywhere. */
    bool enabled() const { return enabled_; }

    // --- delivery decisions (consume RNG; record counters) ------------

    /** Fate of one datagram (UDP). */
    struct DatagramVerdict
    {
        bool drop = false;
        int copies = 1;
        SimTime extraDelay = 0;
    };
    DatagramVerdict onDatagram(SimTime now, std::uint32_t src,
                               std::uint32_t dst);

    /** True if the SYN @p src -> @p dst must be refused. */
    bool onConnect(SimTime now, std::uint32_t src, std::uint32_t dst);

    /** Fate of one TCP/SCTP segment on the ordered stream. */
    enum class SegmentFate
    {
        Deliver,   ///< arrives after extraDelay more than usual
        Rst,       ///< connection is reset mid-stream
        Blackhole, ///< accepted by the kernel, never arrives
    };
    struct SegmentVerdict
    {
        SegmentFate fate = SegmentFate::Deliver;
        SimTime extraDelay = 0;
        bool recovered = false; ///< extraDelay includes a loss recovery
    };
    SegmentVerdict onSegment(SimTime now, std::uint32_t src,
                             std::uint32_t dst);

    stats::FaultStats &stats() { return stats_; }
    const stats::FaultStats &stats() const { return stats_; }

  private:
    using LinkKey = std::pair<std::uint32_t, std::uint32_t>;

    /** Earliest close of an active finite partition, or kTimeNever. */
    SimTime partitionHealsAt(const Impairment &imp, SimTime now) const;

    /** Shared delay model: extraDelay + jitter (+ reorder for UDP). */
    SimTime rollDelay(const Impairment &imp, bool allow_reorder,
                      stats::LinkFaultCounters &c);

    Impairment default_;
    std::map<LinkKey, Impairment> links_;
    stats::FaultStats stats_;
    sim::Rng rng_;
    bool enabled_ = false;
};

} // namespace siprox::net

#endif // SIPROX_NET_IMPAIRMENT_HH

#include "net/udp.hh"

#include <utility>

#include "sim/simulation.hh"

namespace siprox::net {

UdpSocket::UdpSocket(Host &host, std::uint16_t port)
    : DatagramSocket(host, port, "udp recv")
{
}

UdpSocket::~UdpSocket() = default;

sim::Task
UdpSocket::chargeSendBatch(sim::Process &p, std::size_t msgs,
                           std::size_t bytes)
{
    return chargeBatched(p, host_.net().config().udpSendCost,
                         "kernel:udp_send", msgs, bytes);
}

sim::Task
UdpSocket::chargeRecvBatch(sim::Process &p, std::size_t msgs,
                           std::size_t bytes)
{
    return chargeBatched(p, host_.net().config().udpRecvCost,
                         "kernel:udp_recv", msgs, bytes);
}

// Member coroutine: UdpSocket objects are owned by the Host map and
// never move, so capturing `this` in the frame is safe.
sim::Task
UdpSocket::sendPrepared(sim::Process &p, Addr dst, std::string payload)
{
    Network &net = host_.net();
    const NetConfig &cfg = net.config();
    const std::size_t bytes = payload.size();
    ++net.stats().udpSent;
    host_.noteSent(bytes);
    if (cfg.udpLossProb > 0.0 && p.sim().rng().chance(cfg.udpLossProb)) {
        ++net.stats().udpLost;
        co_return;
    }
    int copies = 1;
    SimTime extra_delay = 0;
    if (net.faults().enabled()) {
        auto verdict =
            net.faults().onDatagram(p.sim().now(), host_.id(), dst.host);
        if (verdict.drop) {
            ++net.stats().udpLost;
            ++net.stats().faultDropped;
            co_return;
        }
        copies = verdict.copies;
        extra_delay = verdict.extraDelay;
        if (copies > 1)
            ++net.stats().faultDuplicated;
        if (extra_delay > 0)
            ++net.stats().faultDelayed;
    }
    Network *netp = &net;
    Addr src = localAddr();
    for (int i = 0; i < copies; ++i) {
        // Last (usually only) copy moves the payload instead of
        // duplicating it.
        std::string data =
            (i + 1 == copies) ? std::move(payload) : payload;
        p.sim().after(net.wireDelay(bytes) + extra_delay,
                      [netp, src, dst, data = std::move(data)]() mutable {
            Host *target = netp->hostById(dst.host);
            if (!target)
                return;
            auto it = target->udp_.find(dst.port);
            if (it == target->udp_.end())
                return; // no receiver: silently dropped
            it->second->deliver(Datagram{src, dst, std::move(data)});
        });
    }
}

void
UdpSocket::deliver(Datagram dgram)
{
    Network &net = host_.net();
    host_.noteReceived(dgram.payload.size());
    if (!enqueueDelivery(std::move(dgram))) {
        ++net.stats().udpDropped;
        return;
    }
    ++net.stats().udpDelivered;
}

} // namespace siprox::net

#include "net/udp.hh"

#include <algorithm>
#include <utility>

#include "sim/simulation.hh"

namespace siprox::net {

UdpSocket::UdpSocket(Host &host, std::uint16_t port)
    : host_(host), port_(port)
{
}

UdpSocket::~UdpSocket() = default;

// Member coroutine: UdpSocket objects are owned by the Host map and
// never move, so capturing `this` in the frame is safe.
sim::Task
UdpSocket::sendTo(sim::Process &p, Addr dst, std::string payload)
{
    Network &net = host_.net();
    const NetConfig &cfg = net.config();
    const std::size_t bytes = payload.size();
    co_await p.cpu(cfg.udpSendCost
                   + static_cast<SimTime>(bytes) * cfg.perByteCpu,
                   "kernel:udp_send");
    ++net.stats().udpSent;
    if (cfg.udpLossProb > 0.0 && p.sim().rng().chance(cfg.udpLossProb)) {
        ++net.stats().udpLost;
        co_return;
    }
    int copies = 1;
    SimTime extra_delay = 0;
    if (net.faults().enabled()) {
        auto verdict =
            net.faults().onDatagram(p.sim().now(), host_.id(), dst.host);
        if (verdict.drop) {
            ++net.stats().udpLost;
            ++net.stats().faultDropped;
            co_return;
        }
        copies = verdict.copies;
        extra_delay = verdict.extraDelay;
        if (copies > 1)
            ++net.stats().faultDuplicated;
        if (extra_delay > 0)
            ++net.stats().faultDelayed;
    }
    Network *netp = &net;
    Addr src = localAddr();
    for (int i = 0; i < copies; ++i) {
        // Last (usually only) copy moves the payload instead of
        // duplicating it.
        std::string data =
            (i + 1 == copies) ? std::move(payload) : payload;
        p.sim().after(net.wireDelay(bytes) + extra_delay,
                      [netp, src, dst, data = std::move(data)]() mutable {
            Host *target = netp->hostById(dst.host);
            if (!target)
                return;
            auto it = target->udp_.find(dst.port);
            if (it == target->udp_.end())
                return; // no receiver: silently dropped
            it->second->deliver(Datagram{src, dst, std::move(data)});
        });
    }
}

sim::Task
UdpSocket::recvFrom(sim::Process &p, Datagram &out)
{
    while (!tryRecvFrom(out)) {
        waiters_.push_back(&p);
        co_await p.block("udp recv", sim::trace::Wait::Socket);
        auto it = std::find(waiters_.begin(), waiters_.end(), &p);
        if (it != waiters_.end())
            waiters_.erase(it);
    }
    co_await chargeRecv(p, out.payload.size());
}

sim::Task
UdpSocket::chargeRecv(sim::Process &p, std::size_t bytes)
{
    const NetConfig &cfg = host_.net().config();
    co_await p.cpu(cfg.udpRecvCost
                       + static_cast<SimTime>(bytes) * cfg.perByteCpu,
                   "kernel:udp_recv");
}

bool
UdpSocket::tryRecvFrom(Datagram &out)
{
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

void
UdpSocket::deliver(Datagram dgram)
{
    Network &net = host_.net();
    if (static_cast<int>(queue_.size()) >= net.config().udpRecvQueue) {
        ++net.stats().udpDropped;
        ++overflowDrops_;
        return;
    }
    ++net.stats().udpDelivered;
    queue_.push_back(std::move(dgram));
    if (!waiters_.empty()) {
        sim::Process *w = waiters_.front();
        waiters_.pop_front();
        w->wake();
    }
    notifyPollWaiters();
}

} // namespace siprox::net

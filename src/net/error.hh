/**
 * @file
 * Error type for simulated network operations.
 */

#ifndef SIPROX_NET_ERROR_HH
#define SIPROX_NET_ERROR_HH

#include <stdexcept>
#include <string>

namespace siprox::net {

/** Failure modes of simulated sockets. */
enum class NetErrc
{
    PortExhausted,     ///< no ephemeral ports available (EADDRNOTAVAIL)
    AddressInUse,      ///< bind to a taken port (EADDRINUSE)
    ConnectionRefused, ///< no listener / backlog overflow (ECONNREFUSED)
    SocketLimit,       ///< per-host socket table full (EMFILE-like)
    NotConnected,      ///< operation on a dead connection (ENOTCONN)
};

/** Human-readable errc name. */
const char *netErrcName(NetErrc c);

/** Exception thrown by simulated socket operations. */
class NetError : public std::runtime_error
{
  public:
    NetError(NetErrc code, const std::string &what)
        : std::runtime_error(std::string(netErrcName(code)) + ": "
                             + what),
          code_(code)
    {
    }

    NetErrc code() const { return code_; }

  private:
    NetErrc code_;
};

} // namespace siprox::net

#endif // SIPROX_NET_ERROR_HH

#include "net/tcp.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "net/error.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace siprox::net {

/**
 * Coroutine bodies for TcpConn operations. TcpConn handles are movable,
 * so the coroutines capture the endpoint shared_ptr by value instead of
 * `this`.
 */
struct TcpOps
{
    static sim::Task
    send(sim::Process &p, std::shared_ptr<TcpEndpoint> ep,
         std::string data)
    {
        if (!ep) {
            if (sim::trace::enabled())
                sim::trace::log(p.sim().now(), "tcp-drop", "null ep");
            co_return;
        }
        if (sim::trace::enabled()) {
            sim::trace::log(p.sim().now(), "tcp-send",
                            ep->local_.toString() + "->"
                                + ep->remote_.toString() + " "
                                + std::to_string(data.size()) + "B");
        }
        Network &net = ep->host_.net();
        const NetConfig &cfg = net.config();
        const std::size_t bytes = data.size();
        co_await p.cpu(cfg.tcpSendCost
                       + static_cast<SimTime>(bytes) * cfg.perByteCpu,
                       "kernel:tcp_send");
        if (ep->tls_) {
            // Record framing + bulk cipher on the way out.
            co_await p.cpu(cfg.tlsRecordCost
                           + static_cast<SimTime>(bytes)
                               * cfg.tlsPerByteCpu,
                           "tls:record");
            ++net.stats().tlsRecords;
        }
        ++net.stats().tcpSegments;
        net.stats().tcpBytes += bytes;
        ep->host_.noteSent(bytes);
        if (ep->closed_ || ep->state_ != TcpState::Established
            || !ep->peer_) {
            if (sim::trace::enabled()) {
                sim::trace::log(p.sim().now(), "tcp-drop",
                                ep->local_.toString() + "->"
                                    + ep->remote_.toString()
                                    + (ep->closed_ ? " closed"
                                       : !ep->peer_ ? " no-peer"
                                                    : " not-established"));
            }
            co_return; // connection is gone: bytes vanish
        }
        auto peer = ep->peer_;
        SimTime fault_delay = 0;
        if (net.faults().enabled()) {
            auto verdict = net.faults().onSegment(
                p.sim().now(), ep->local_.host, ep->remote_.host);
            switch (verdict.fate) {
              case FaultInjector::SegmentFate::Blackhole:
                // The kernel accepted the bytes but they never arrive
                // and no error ever surfaces on either side.
                ++net.stats().tcpBlackholed;
                co_return;
              case FaultInjector::SegmentFate::Rst: {
                ++net.stats().tcpRstInjected;
                if (sim::trace::enabled()) {
                    sim::trace::log(p.sim().now(), "tcp-rst",
                                    ep->local_.toString() + "->"
                                        + ep->remote_.toString());
                }
                // Sender learns of the reset immediately; the peer
                // sees it one latency later.
                ep->state_ = TcpState::Reset;
                ep->wakeAllWaiters();
                ep->notifyPollWaiters();
                net.sim().after(net.config().latency, [peer] {
                    if (peer->closed_
                        || peer->state_ != TcpState::Established)
                        return;
                    peer->state_ = TcpState::Reset;
                    peer->wakeAllWaiters();
                    peer->notifyPollWaiters();
                });
                co_return;
              }
              case FaultInjector::SegmentFate::Deliver:
                fault_delay = verdict.extraDelay;
                if (verdict.recovered)
                    ++net.stats().tcpRecoveries;
                if (fault_delay > 0)
                    ++net.stats().faultDelayed;
                break;
            }
        }
        // TCP is a single ordered stream: later segments (and the
        // eventual FIN) must not overtake earlier ones.
        SimTime arrival =
            std::max(p.sim().now() + net.wireDelay(bytes) + fault_delay,
                     ep->txArrivalFloor_);
        ep->txArrivalFloor_ = arrival;
        net.sim().at(arrival, [peer, d = std::move(data)]() mutable {
            if (peer->closed_)
                return;
            peer->host_.noteReceived(d.size());
            peer->rxBuf_ += d;
            peer->wakeOneWaiter();
            peer->notifyPollWaiters();
        });
    }

    static sim::Task
    recv(sim::Process &p, std::shared_ptr<TcpEndpoint> ep,
         std::string *out, std::size_t max_bytes)
    {
        out->clear();
        if (!ep)
            co_return;
        while (ep->rxBuf_.empty() && !ep->peerClosed_ && !ep->closed_
               && ep->state_ == TcpState::Established) {
            ep->waiters_.push_back(&p);
            co_await p.block("tcp recv", sim::trace::Wait::Socket);
            auto &q = ep->waiters_;
            auto it = std::find(q.begin(), q.end(), &p);
            if (it != q.end())
                q.erase(it);
        }
        const NetConfig &cfg = ep->host_.net().config();
        if (ep->tlsPendingHandshake_ > 0) {
            // The accepting side runs its half of the TLS handshake
            // the first time it touches the connection.
            SimTime hs = ep->tlsPendingHandshake_;
            ep->tlsPendingHandshake_ = 0;
            co_await p.cpu(hs, "tls:handshake");
        }
        if (!ep->rxBuf_.empty()) {
            std::size_t n = std::min(max_bytes, ep->rxBuf_.size());
            if (n == ep->rxBuf_.size()) {
                // Full drain (the common case): hand over the buffer
                // instead of copying it.
                *out = std::move(ep->rxBuf_);
                ep->rxBuf_.clear();
            } else {
                out->assign(ep->rxBuf_, 0, n);
                ep->rxBuf_.erase(0, n);
            }
            co_await p.cpu(cfg.tcpRecvCost
                           + static_cast<SimTime>(n) * cfg.perByteCpu,
                           "kernel:tcp_recv");
            if (ep->tls_) {
                // Record MAC check + bulk decipher on the way in.
                co_await p.cpu(cfg.tlsRecordCost
                               + static_cast<SimTime>(n)
                                   * cfg.tlsPerByteCpu,
                               "tls:record");
            }
        } else {
            // EOF or reset: an empty read still costs a syscall.
            co_await p.cpu(cfg.tcpRecvCost, "kernel:tcp_recv");
        }
    }

    static sim::Task
    close(sim::Process &p, std::shared_ptr<TcpEndpoint> ep, bool was_open)
    {
        if (!ep)
            co_return;
        co_await p.cpu(ep->host_.net().config().tcpCloseCost,
                       "kernel:tcp_close");
        if (was_open)
            ep->closeHandle("closeop");
    }
};

// --- TcpEndpoint ----------------------------------------------------------

TcpEndpoint::TcpEndpoint(Host &host, Addr local, Addr remote,
                         bool owns_port, std::uint64_t id)
    : host_(host), local_(local), remote_(remote), ownsPort_(owns_port),
      id_(id)
{
}

void
TcpEndpoint::wakeOneWaiter()
{
    if (!waiters_.empty()) {
        sim::Process *w = waiters_.front();
        waiters_.pop_front();
        w->wake();
    }
}

void
TcpEndpoint::wakeAllWaiters()
{
    while (!waiters_.empty())
        wakeOneWaiter();
}

void
TcpEndpoint::closeHandle(const char *tag)
{
#ifdef SIPROX_TCP_HANDLE_DEBUG
    handleLog += std::string(tag) + "->"
        + std::to_string(openHandles_ - 1) + ";";
    if (openHandles_ <= 0) {
        std::fprintf(stderr, "DOUBLE CLOSE conn %llu %s->%s log: %s\n",
                     (unsigned long long)id_, local_.toString().c_str(),
                     remote_.toString().c_str(), handleLog.c_str());
        std::abort();
    }
#endif
    assert(openHandles_ > 0);
    if (--openHandles_ > 0)
        return;
    if (closed_)
        return;
    closed_ = true;
    Network &net = host_.net();

    // FIN to the peer, if the connection ever established. The FIN
    // is sequenced after every data segment already in flight, and is
    // subject to the same link faults (a stalled or partitioned link
    // swallows the FIN along with the data).
    if (peer_ && state_ == TcpState::Established && !selfClosed_) {
        selfClosed_ = true;
        bool fin_lost = false;
        SimTime fault_delay = 0;
        if (net.faults().enabled()) {
            auto verdict = net.faults().onSegment(
                net.sim().now(), local_.host, remote_.host);
            if (verdict.fate == FaultInjector::SegmentFate::Blackhole) {
                ++net.stats().tcpBlackholed;
                fin_lost = true;
            } else {
                // An RST roll on the FIN segment just means the
                // teardown is abrupt; the peer still sees EOF.
                fault_delay = verdict.extraDelay;
                if (verdict.recovered)
                    ++net.stats().tcpRecoveries;
            }
        }
        if (!fin_lost) {
            auto peer = peer_;
            SimTime arrival = std::max(
                net.sim().now() + net.config().latency + fault_delay,
                txArrivalFloor_);
            txArrivalFloor_ = arrival;
            net.sim().at(arrival, [peer] {
                if (peer->closed_)
                    return;
                peer->peerClosed_ = true;
                peer->wakeAllWaiters();
                peer->notifyPollWaiters();
            });
        }
    }

    // Port release: a passive close (peer FIN seen first) or a failed
    // connect frees the port immediately; an active close pins it in
    // TIME_WAIT.
    if (ownsPort_) {
        PortAllocator *ports = &host_.ports();
        std::uint16_t port = local_.port;
        if (peerClosed_ || state_ != TcpState::Established) {
            ports->release(port);
        } else {
            net.sim().after(net.config().timeWait,
                            [ports, port] { ports->release(port); });
        }
    }

    host_.socketClosed();

    // Break the peer reference cycle; the dead side can no longer be
    // written to.
    if (peer_) {
        peer_->peer_.reset();
        peer_.reset();
    }
}

// --- TcpConn ---------------------------------------------------------------

TcpConn
TcpConn::dup() const
{
    TcpConn c;
    if (valid()) {
        c.ep_ = ep_;
        c.open_ = true;
        ++ep_->openHandles_;
#ifdef SIPROX_TCP_HANDLE_DEBUG
        char buf[64];
        std::snprintf(buf, sizeof(buf), "dup(%p)->%d;", (void *)&c,
                      ep_->openHandles_);
        ep_->handleLog += buf;
#endif
    }
    return c;
}

sim::Task
TcpConn::send(sim::Process &p, std::string data) const
{
    return TcpOps::send(p, ep_, std::move(data));
}

sim::Task
TcpConn::recv(sim::Process &p, std::string &out,
              std::size_t max_bytes) const
{
    return TcpOps::recv(p, ep_, &out, max_bytes);
}

sim::Task
TcpConn::close(sim::Process &p)
{
    // Transfer handle ownership into the coroutine so the TcpConn can
    // be safely destroyed or moved while the close is awaited.
    auto ep = std::move(ep_);
    bool was_open = open_;
    open_ = false;
    return TcpOps::close(p, std::move(ep), was_open);
}

// --- TcpListener -------------------------------------------------------------

TcpListener::TcpListener(Host &host, std::uint16_t port)
    : host_(host), port_(port)
{
}

TcpListener::~TcpListener() = default;

sim::Task
TcpListener::accept(sim::Process &p, TcpConn &out)
{
    while (acceptQ_.empty()) {
        waiters_.push_back(&p);
        co_await p.block("tcp accept", sim::trace::Wait::Socket);
        auto it = std::find(waiters_.begin(), waiters_.end(), &p);
        if (it != waiters_.end())
            waiters_.erase(it);
    }
    auto ep = std::move(acceptQ_.front());
    acceptQ_.pop_front();
    co_await p.cpu(host_.net().config().tcpAcceptCost,
                   "kernel:tcp_accept");
    out = TcpConn(std::move(ep));
}

bool
TcpListener::tryAccept(TcpConn &out)
{
    if (acceptQ_.empty())
        return false;
    auto ep = std::move(acceptQ_.front());
    acceptQ_.pop_front();
    out = TcpConn(std::move(ep));
    return true;
}

// --- Host::tcpConnect ---------------------------------------------------------

sim::Task
Host::tcpConnect(sim::Process &p, Addr remote, TcpConn &out,
                 std::uint16_t local_port)
{
    const NetConfig &cfg = net_.config();
    if (openSockets_ >= cfg.maxSocketsPerHost)
        throw NetError(NetErrc::SocketLimit, "host socket table full");
    std::uint16_t lport;
    if (local_port != 0) {
        ports_.reserve(local_port);
        lport = local_port;
    } else {
        lport = ports_.allocEphemeral();
    }

    co_await p.cpu(cfg.tcpConnectCost, "kernel:tcp_connect");

    auto ep = std::make_shared<TcpEndpoint>(
        *this, Addr{id_, lport}, remote, /*owns_port=*/true,
        net_.nextConnId());
    socketOpened();
    adoptEndpoint(ep);
    ++net_.stats().tcpConnects;
    TcpConn handle(ep);

    Network *net = &net_;
    // SYN arrives at the server after one latency.
    net->sim().after(cfg.latency, [net, ep, remote] {
        const NetConfig &c = net->config();
        Host *dst = net->hostById(remote.host);
        TcpListener *listener = nullptr;
        if (dst) {
            auto it = dst->listeners_.find(remote.port);
            if (it != dst->listeners_.end())
                listener = it->second.get();
        }
        bool fault_refuse = net->faults().enabled()
            && net->faults().onConnect(net->sim().now(),
                                       ep->local_.host, remote.host);
        if (fault_refuse)
            ++net->stats().tcpFaultRefused;
        bool backlog_full = listener
            && static_cast<int>(listener->acceptQ_.size())
                >= c.acceptBacklog;
        bool refuse = fault_refuse || !listener || backlog_full
            || dst->openSockets_ >= c.maxSocketsPerHost;
        if (refuse) {
            ++net->stats().tcpRefused;
            if (backlog_full)
                ++listener->backlogRefused_;
            net->sim().after(c.latency, [ep] {
                if (ep->closed_ || ep->state_ != TcpState::SynSent)
                    return;
                ep->state_ = TcpState::Reset;
                ep->wakeAllWaiters();
                ep->notifyPollWaiters();
            });
            return;
        }
        // Server-side endpoint is established immediately and queued.
        auto sep = std::make_shared<TcpEndpoint>(
            *dst, remote, ep->local_, /*owns_port=*/false, ep->id());
        sep->state_ = TcpState::Established;
        sep->peer_ = ep;
        ep->peer_ = sep;
        dst->socketOpened();
        dst->adoptEndpoint(sep);
        listener->acceptQ_.push_back(std::move(sep));
        if (!listener->waiters_.empty()) {
            sim::Process *w = listener->waiters_.front();
            listener->waiters_.pop_front();
            w->wake();
        }
        listener->notifyPollWaiters();
        // SYN/ACK completes the client side after another latency.
        net->sim().after(c.latency, [ep] {
            if (ep->closed_ || ep->state_ != TcpState::SynSent)
                return;
            ep->state_ = TcpState::Established;
            ep->wakeAllWaiters();
            ep->notifyPollWaiters();
        });
    });

    while (ep->state_ == TcpState::SynSent) {
        ep->waiters_.push_back(&p);
        co_await p.block("tcp connect", sim::trace::Wait::Socket);
        auto it = std::find(ep->waiters_.begin(), ep->waiters_.end(), &p);
        if (it != ep->waiters_.end())
            ep->waiters_.erase(it);
    }
    if (ep->state_ == TcpState::Reset) {
        handle.closeQuiet();
        throw NetError(NetErrc::ConnectionRefused, remote.toString());
    }
    out = std::move(handle);
}

} // namespace siprox::net

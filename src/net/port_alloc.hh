/**
 * @file
 * Per-host port allocator with TIME_WAIT semantics. The §4.3 idle
 * timeout experiment hinges on churned connections pinning ports here.
 */

#ifndef SIPROX_NET_PORT_ALLOC_HH
#define SIPROX_NET_PORT_ALLOC_HH

#include <cstdint>
#include <unordered_set>

#include "net/config.hh"
#include "net/error.hh"

namespace siprox::net {

/** Tracks bound and TIME_WAIT ports for one host. */
class PortAllocator
{
  public:
    PortAllocator(std::uint16_t ephemeral_lo, std::uint16_t ephemeral_hi)
        : lo_(ephemeral_lo), hi_(ephemeral_hi), next_(ephemeral_lo)
    {
    }

    /** Reserve a specific port; throws AddressInUse if taken. */
    void
    reserve(std::uint16_t port)
    {
        if (!inUse_.insert(port).second) {
            throw NetError(NetErrc::AddressInUse,
                           "port " + std::to_string(port));
        }
    }

    /** True if @p port is currently reserved. */
    bool taken(std::uint16_t port) const { return inUse_.count(port); }

    /**
     * Allocate an ephemeral port, scanning circularly from the last
     * allocation point. Throws PortExhausted when the pool is dry.
     */
    std::uint16_t
    allocEphemeral()
    {
        const int span = hi_ - lo_;
        for (int i = 0; i < span; ++i) {
            std::uint16_t candidate = next_;
            next_ = next_ + 1 >= hi_ ? lo_ : next_ + 1;
            if (inUse_.insert(candidate).second)
                return candidate;
        }
        throw NetError(NetErrc::PortExhausted, "ephemeral pool dry");
    }

    /** Release a reserved port immediately. */
    void release(std::uint16_t port) { inUse_.erase(port); }

    /** Number of reserved ports (bound + TIME_WAIT). */
    std::size_t inUse() const { return inUse_.size(); }

    /** Size of the ephemeral pool. */
    std::size_t poolSize() const { return hi_ - lo_; }

  private:
    std::uint16_t lo_;
    std::uint16_t hi_;
    std::uint16_t next_;
    std::unordered_set<std::uint16_t> inUse_;
};

} // namespace siprox::net

#endif // SIPROX_NET_PORT_ALLOC_HH

/**
 * @file
 * Simulated TCP: connection-oriented, byte-stream, reliable and ordered.
 *
 * What is modeled (because the paper's results depend on it): handshake
 * latency and kernel cost, byte-stream semantics (no message framing —
 * receivers must frame), FIN/EOF, connect refusal, ephemeral ports with
 * TIME_WAIT on active close, per-host socket limits, and fd-like
 * move-only handles that can be duplicated and passed between processes
 * (SCM_RIGHTS). What is not modeled: congestion control, loss recovery,
 * and flow-control windows — the testbed is an uncongested LAN and the
 * workload is CPU-bound (see DESIGN.md substitutions).
 */

#ifndef SIPROX_NET_TCP_HH
#define SIPROX_NET_TCP_HH

#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>

#include "net/addr.hh"
#include "net/network.hh"
#include "sim/pollable.hh"
#include "sim/process.hh"
#include "sim/task.hh"

namespace siprox::net {

class TcpConn;

/** Connection state of one endpoint. */
enum class TcpState
{
    SynSent,
    Established,
    Reset,
};

/**
 * Shared per-side connection state. Handles (TcpConn) reference an
 * endpoint; the connection side closes when its last handle closes.
 */
class TcpEndpoint : public sim::Pollable,
                    public std::enable_shared_from_this<TcpEndpoint>
{
  public:
    TcpEndpoint(Host &host, Addr local, Addr remote, bool owns_port,
                std::uint64_t id);

    std::uint64_t id() const { return id_; }
    Addr local() const { return local_; }
    Addr remote() const { return remote_; }
    TcpState state() const { return state_; }

    /** FIN received from the peer. */
    bool peerClosed() const { return peerClosed_; }

    /** This side fully closed (all handles gone). */
    bool closed() const { return closed_; }

    /** Bytes waiting to be read. */
    std::size_t rxAvailable() const { return rxBuf_.size(); }

    /** Open handle (fd) count across all processes. */
    int openHandles() const { return openHandles_; }

    /** Readable: data, EOF, or error would make recv return. */
    bool
    pollReady() const override
    {
        return !rxBuf_.empty() || peerClosed_ || state_ == TcpState::Reset;
    }

    /** True once a TLS handshake completed over this connection. */
    bool tls() const { return tls_; }

  private:
    friend class Host;
    friend class TcpConn;
    friend class TcpListener;
    friend struct TcpOps;

    void wakeOneWaiter();
    void wakeAllWaiters();

    /** Drop one handle; the last one runs the close protocol. */
    void closeHandle(const char *tag = "?");

    Host &host_;
    Addr local_;
    Addr remote_;
    /** Whether this side reserved local_.port (active opener / client). */
    bool ownsPort_;
    std::uint64_t id_;
    TcpState state_ = TcpState::SynSent;
    std::string rxBuf_;
    bool peerClosed_ = false;
    bool selfClosed_ = false;
    /** Ordered delivery: no byte or FIN of ours may arrive at the
     *  peer before this instant (TCP sequence ordering). */
    sim::SimTime txArrivalFloor_ = 0;
    bool closed_ = false;
    int openHandles_ = 0;
    /** TLS session over this connection: adds per-record crypto cost
     *  to every send/recv. Set by Host::tlsConnect on both ends. */
    bool tls_ = false;
    /** Server-side handshake CPU, charged (once) on the first read —
     *  that is when the accepting process actually runs the
     *  handshake in this model. */
    sim::SimTime tlsPendingHandshake_ = 0;
    std::shared_ptr<TcpEndpoint> peer_;
    std::deque<sim::Process *> waiters_;
#ifdef SIPROX_TCP_HANDLE_DEBUG
  public:
    std::string handleLog;
#endif
};

/**
 * A file-descriptor-like handle to a TCP connection. Move-only; the
 * destructor closes quietly. dup() models passing the descriptor to
 * another process.
 */
class TcpConn
{
  public:
    TcpConn() = default;

    TcpConn(TcpConn &&other) noexcept
        : ep_(std::move(other.ep_)), open_(other.open_)
    {
        other.open_ = false;
#ifdef SIPROX_TCP_HANDLE_DEBUG
        if (open_ && ep_) {
            char buf[80];
            std::snprintf(buf, sizeof(buf), "mv(%p<-%p);", (void *)this,
                          (void *)&other);
            ep_->handleLog += buf;
        }
#endif
    }

    TcpConn &
    operator=(TcpConn &&other) noexcept
    {
        if (this != &other) {
            closeQuiet("massign");
            ep_ = std::move(other.ep_);
            open_ = other.open_;
            other.open_ = false;
#ifdef SIPROX_TCP_HANDLE_DEBUG
            if (open_ && ep_) {
                char buf[80];
                std::snprintf(buf, sizeof(buf), "ma(%p<-%p);",
                              (void *)this, (void *)&other);
                ep_->handleLog += buf;
            }
#endif
        }
        return *this;
    }

    TcpConn(const TcpConn &) = delete;
    TcpConn &operator=(const TcpConn &) = delete;

    ~TcpConn() { closeQuiet("dtor"); }

    bool valid() const { return open_ && ep_ != nullptr; }

    std::uint64_t id() const { return ep_ ? ep_->id() : 0; }
    Addr local() const { return ep_ ? ep_->local() : Addr{}; }
    Addr remote() const { return ep_ ? ep_->remote() : Addr{}; }

    /** Duplicate the descriptor (fd passing / dup()). */
    TcpConn dup() const;

    /**
     * Send @p data. Charges kernel cost; bytes arrive in order after
     * the wire delay. Writes on a dead connection are silently dropped
     * (the peer is gone; there is no one to notice).
     */
    sim::Task send(sim::Process &p, std::string data) const;

    /**
     * Read up to @p max_bytes into @p out. Blocks until data, EOF
     * (out is empty), or reset (out is empty). Charges kernel cost.
     */
    sim::Task recv(sim::Process &p, std::string &out,
                   std::size_t max_bytes = 65536) const;

    /** Close with kernel cost charged to @p p. */
    sim::Task close(sim::Process &p);

    /** Close without a process context (teardown paths). */
    void
    closeQuiet(const char *tag = "quiet")
    {
        if (open_ && ep_) {
#ifdef SIPROX_TCP_HANDLE_DEBUG
            char buf[64];
            std::snprintf(buf, sizeof(buf), "(%p)", (void *)this);
            ep_->handleLog += buf;
#endif
            ep_->closeHandle(tag);
            open_ = false;
        }
        ep_.reset();
    }

    sim::Pollable &readable() const { return *ep_; }

    const std::shared_ptr<TcpEndpoint> &endpoint() const { return ep_; }

  private:
    friend class Host;
    friend class TcpListener;
    friend struct TcpOps;

    /** Adopt an endpoint, taking one handle reference. */
    explicit TcpConn(std::shared_ptr<TcpEndpoint> ep)
        : ep_(std::move(ep)), open_(true)
    {
        ++ep_->openHandles_;
#ifdef SIPROX_TCP_HANDLE_DEBUG
        char buf[64];
        std::snprintf(buf, sizeof(buf), "open(%p)->%d;", (void *)this,
                      ep_->openHandles_);
        ep_->handleLog += buf;
#endif
    }

    std::shared_ptr<TcpEndpoint> ep_;
    bool open_ = false;
};

/**
 * A passive TCP socket with an accept queue. Created via
 * Host::tcpListen().
 */
class TcpListener : public sim::Pollable
{
  public:
    TcpListener(Host &host, std::uint16_t port);
    ~TcpListener() override;

    /** Blocking accept; charges kernel accept cost. */
    sim::Task accept(sim::Process &p, TcpConn &out);

    /** Non-blocking accept; no cost charged. */
    bool tryAccept(TcpConn &out);

    Addr localAddr() const { return Addr{host_.id(), port_}; }

    std::size_t backlogDepth() const { return acceptQ_.size(); }

    /** SYNs refused because this listener's accept queue was full. */
    std::uint64_t backlogRefused() const { return backlogRefused_; }

    bool pollReady() const override { return !acceptQ_.empty(); }

  private:
    friend class Host;
    friend struct TcpOps;

    Host &host_;
    std::uint16_t port_;
    std::deque<std::shared_ptr<TcpEndpoint>> acceptQ_;
    std::deque<sim::Process *> waiters_;
    std::uint64_t backlogRefused_ = 0;
};

} // namespace siprox::net

#endif // SIPROX_NET_TCP_HH

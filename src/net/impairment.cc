#include "net/impairment.hh"

namespace siprox::net {

FaultInjector::FaultInjector(std::uint64_t seed)
    // Derive the fault stream from the simulation seed without
    // consuming from the simulation's own RNG, so enabling the
    // subsystem does not perturb existing seeded workloads.
    : rng_(seed ^ 0xfa17117ec7ed5eedULL)
{
}

void
FaultInjector::setDefault(Impairment imp)
{
    default_ = std::move(imp);
    enabled_ = enabled_ || !default_.trivial();
}

void
FaultInjector::setLink(std::uint32_t src, std::uint32_t dst,
                       Impairment imp)
{
    enabled_ = enabled_ || !imp.trivial();
    links_[LinkKey{src, dst}] = std::move(imp);
}

void
FaultInjector::setLinkSymmetric(std::uint32_t a, std::uint32_t b,
                                const Impairment &imp)
{
    setLink(a, b, imp);
    setLink(b, a, imp);
}

void
FaultInjector::addPartition(std::uint32_t a, std::uint32_t b,
                            SimTime start, SimTime stop)
{
    for (auto [src, dst] : {LinkKey{a, b}, LinkKey{b, a}}) {
        auto it = links_.find(LinkKey{src, dst});
        if (it == links_.end())
            it = links_.emplace(LinkKey{src, dst}, default_).first;
        it->second.partitions.push_back(PartitionWindow{start, stop});
    }
    enabled_ = true;
}

const Impairment &
FaultInjector::lookup(std::uint32_t src, std::uint32_t dst) const
{
    auto it = links_.find(LinkKey{src, dst});
    return it == links_.end() ? default_ : it->second;
}

bool
FaultInjector::partitioned(std::uint32_t src, std::uint32_t dst,
                           SimTime now) const
{
    for (const auto &w : lookup(src, dst).partitions) {
        if (w.active(now))
            return true;
    }
    return false;
}

SimTime
FaultInjector::partitionHealsAt(const Impairment &imp,
                                SimTime now) const
{
    SimTime heal = sim::kTimeNever;
    for (const auto &w : imp.partitions) {
        if (w.active(now) && w.stop < heal)
            heal = w.stop;
    }
    return heal;
}

SimTime
FaultInjector::rollDelay(const Impairment &imp, bool allow_reorder,
                         stats::LinkFaultCounters &c)
{
    SimTime extra = imp.extraDelay;
    if (imp.jitter > 0)
        extra += static_cast<SimTime>(
            rng_.below(static_cast<std::uint64_t>(imp.jitter)));
    if (extra > 0)
        ++c.delayed;
    if (allow_reorder && imp.reorderProb > 0
        && rng_.chance(imp.reorderProb)) {
        ++c.reordered;
        extra += static_cast<SimTime>(
            rng_.below(static_cast<std::uint64_t>(
                imp.reorderWindow > 0 ? imp.reorderWindow : 1)));
    }
    return extra;
}

FaultInjector::DatagramVerdict
FaultInjector::onDatagram(SimTime now, std::uint32_t src,
                          std::uint32_t dst)
{
    DatagramVerdict v;
    const Impairment &imp = lookup(src, dst);
    auto &c = stats_.link(src, dst);
    ++c.offered;
    for (const auto &w : imp.partitions) {
        if (w.active(now)) {
            ++c.partitionDrops;
            v.drop = true;
            return v;
        }
    }
    if (imp.lossProb > 0 && rng_.chance(imp.lossProb)) {
        ++c.lost;
        v.drop = true;
        return v;
    }
    if (imp.dupProb > 0 && rng_.chance(imp.dupProb)) {
        ++c.duplicated;
        v.copies = 2;
    }
    v.extraDelay = rollDelay(imp, /*allow_reorder=*/true, c);
    return v;
}

bool
FaultInjector::onConnect(SimTime now, std::uint32_t src,
                         std::uint32_t dst)
{
    const Impairment &imp = lookup(src, dst);
    auto &c = stats_.link(src, dst);
    ++c.offered;
    for (const auto &w : imp.partitions) {
        if (w.active(now)) {
            ++c.connectsRefused;
            return true;
        }
    }
    if (imp.connectRefuseProb > 0
        && rng_.chance(imp.connectRefuseProb)) {
        ++c.connectsRefused;
        return true;
    }
    return false;
}

FaultInjector::SegmentVerdict
FaultInjector::onSegment(SimTime now, std::uint32_t src,
                         std::uint32_t dst)
{
    SegmentVerdict v;
    const Impairment &imp = lookup(src, dst);
    auto &c = stats_.link(src, dst);
    ++c.offered;
    if (imp.stalled) {
        ++c.stalledDrops;
        v.fate = SegmentFate::Blackhole;
        return v;
    }
    SimTime heal = partitionHealsAt(imp, now);
    if (heal != sim::kTimeNever) {
        // The kernel keeps retransmitting; data flows once the
        // partition closes (plus one recovery interval).
        ++c.partitionHeld;
        v.extraDelay = (heal - now) + imp.recoveryDelay;
        return v;
    }
    if (partitioned(src, dst, now)) {
        // Unbounded partition: the stream is dead; bytes never arrive.
        ++c.partitionDrops;
        v.fate = SegmentFate::Blackhole;
        return v;
    }
    if (imp.rstProb > 0 && rng_.chance(imp.rstProb)) {
        ++c.rstsInjected;
        v.fate = SegmentFate::Rst;
        return v;
    }
    if (imp.lossProb > 0 && rng_.chance(imp.lossProb)) {
        // Reliable transports recover in-kernel: the segment (and the
        // ordered stream behind it) arrives late instead of never.
        ++c.recoveries;
        v.recovered = true;
        v.extraDelay += imp.recoveryDelay;
    }
    v.extraDelay += rollDelay(imp, /*allow_reorder=*/false, c);
    return v;
}

} // namespace siprox::net
